//! Residual flow network with integer capacities.

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Index of a (directed) edge in a [`FlowNetwork`]. Forward edges get even
/// ids, their residual twins the following odd id.
pub type EdgeId = usize;

/// One directed arc of the residual network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    to: NodeId,
    /// Remaining residual capacity.
    cap: i64,
}

/// A flow network stored as an adjacency list over a shared edge arena.
///
/// Every call to [`FlowNetwork::add_edge`] creates a forward edge with the
/// given capacity and a residual (reverse) edge with capacity 0; pushing flow
/// along one decrements its capacity and increments its twin's, so the current
/// flow on a forward edge `e` is `original_capacity - cap(e) = cap(e ^ 1)`
/// whenever the reverse edge started at zero.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    /// Original capacity of each edge (for flow extraction / reset).
    original_cap: Vec<i64>,
    /// Adjacency: for each node, the edge ids leaving it (forward or residual).
    adj: Vec<Vec<EdgeId>>,
}

impl FlowNetwork {
    /// Create a network with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Self { edges: Vec::new(), original_cap: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a new node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of *forward* edges (residual twins are not counted).
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Add a directed edge `from -> to` with the given capacity. Returns the
    /// id of the forward edge; the residual twin is `id ^ 1`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: i64) -> EdgeId {
        assert!(from < self.adj.len() && to < self.adj.len(), "edge endpoint out of range");
        assert!(cap >= 0, "negative capacity");
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.original_cap.push(cap);
        self.edges.push(Edge { to: from, cap: 0 });
        self.original_cap.push(0);
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Residual capacity of an edge.
    pub fn residual_capacity(&self, e: EdgeId) -> i64 {
        self.edges[e].cap
    }

    /// Head (target node) of an edge.
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.edges[e].to
    }

    /// The flow currently routed through a forward edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        debug_assert!(e.is_multiple_of(2), "flow_on expects a forward edge id");
        self.original_cap[e] - self.edges[e].cap
    }

    /// Original capacity of an edge.
    pub fn original_capacity(&self, e: EdgeId) -> i64 {
        self.original_cap[e]
    }

    /// Edge ids leaving `v` (both forward and residual edges).
    pub fn edges_from(&self, v: NodeId) -> &[EdgeId] {
        &self.adj[v]
    }

    /// Push `amount` units of flow along edge `e` (and pull them back on its
    /// twin). Used by the max-flow algorithms.
    pub(crate) fn push(&mut self, e: EdgeId, amount: i64) {
        debug_assert!(amount >= 0 && amount <= self.edges[e].cap);
        self.edges[e].cap -= amount;
        self.edges[e ^ 1].cap += amount;
    }

    /// Reset all flow to zero, restoring original capacities.
    pub fn reset_flow(&mut self) {
        for (e, cap) in self.edges.iter_mut().zip(self.original_cap.iter()) {
            e.cap = *cap;
        }
    }

    /// Total flow out of `source` minus flow into it (i.e. the value of the
    /// current flow if `source` is the flow source).
    pub fn flow_value(&self, source: NodeId) -> i64 {
        let mut total = 0;
        for &e in &self.adj[source] {
            if e % 2 == 0 {
                total += self.flow_on(e);
            } else {
                // Flow entering the source along a forward edge owned by
                // another node appears as residual capacity here.
                total -= self.edges[e].cap;
            }
        }
        total
    }

    /// Verify flow conservation at every node except `source` and `sink` and
    /// that no edge exceeds its capacity. Intended for tests and debugging.
    pub fn check_flow_conservation(&self, source: NodeId, sink: NodeId) -> bool {
        let n = self.num_nodes();
        let mut balance = vec![0i64; n];
        for e in (0..self.edges.len()).step_by(2) {
            let f = self.flow_on(e);
            if f < 0 || f > self.original_cap[e] {
                return false;
            }
            let from = self.edges[e ^ 1].to;
            let to = self.edges[e].to;
            balance[from] -= f;
            balance[to] += f;
        }
        (0..n).all(|v| v == source || v == sink || balance[v] == 0)
    }

    /// Iterate over forward edges as `(from, to, capacity, flow)` tuples.
    pub fn iter_forward_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, i64, i64)> + '_ {
        (0..self.edges.len()).step_by(2).map(move |e| {
            let from = self.edges[e ^ 1].to;
            let to = self.edges[e].to;
            (from, to, self.original_cap[e], self.flow_on(e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_creates_residual_twin() {
        let mut g = FlowNetwork::with_nodes(2);
        let e = g.add_edge(0, 1, 5);
        assert_eq!(e, 0);
        assert_eq!(g.residual_capacity(e), 5);
        assert_eq!(g.residual_capacity(e ^ 1), 0);
        assert_eq!(g.edge_target(e), 1);
        assert_eq!(g.edge_target(e ^ 1), 0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn push_moves_capacity_to_twin() {
        let mut g = FlowNetwork::with_nodes(2);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 3);
        assert_eq!(g.residual_capacity(e), 2);
        assert_eq!(g.residual_capacity(e ^ 1), 3);
        assert_eq!(g.flow_on(e), 3);
        g.reset_flow();
        assert_eq!(g.flow_on(e), 0);
        assert_eq!(g.residual_capacity(e), 5);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a, b), (0, 1));
        g.add_edge(a, b, 1);
        assert_eq!(g.edges_from(a).len(), 1);
        assert_eq!(g.edges_from(b).len(), 1); // residual twin
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_panics() {
        let mut g = FlowNetwork::with_nodes(1);
        g.add_edge(0, 1, 1);
    }

    #[test]
    fn conservation_check_on_simple_path() {
        let mut g = FlowNetwork::with_nodes(3);
        let e1 = g.add_edge(0, 1, 4);
        let e2 = g.add_edge(1, 2, 4);
        g.push(e1, 2);
        g.push(e2, 2);
        assert!(g.check_flow_conservation(0, 2));
        assert_eq!(g.flow_value(0), 2);
        // Unbalanced intermediate node must be detected.
        let e3 = g.add_edge(0, 1, 1);
        g.push(e3, 1);
        assert!(!g.check_flow_conservation(0, 2));
    }

    #[test]
    fn iter_forward_edges_reports_flow() {
        let mut g = FlowNetwork::with_nodes(2);
        let e = g.add_edge(0, 1, 7);
        g.push(e, 4);
        let edges: Vec<_> = g.iter_forward_edges().collect();
        assert_eq!(edges, vec![(0, 1, 7, 4)]);
    }
}
