//! Hopcroft–Karp maximum bipartite matching.
//!
//! Runs in `O(E * sqrt(V))` and serves two purposes in this workspace: a fast
//! path for pure matching instances (no costs), and an independent oracle to
//! cross-check the max-flow based matchings in tests and property tests.

use std::collections::VecDeque;

const NIL: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Compute a maximum matching of the bipartite graph with `n_left` left
/// vertices and `n_right` right vertices, where `adj[l]` lists the right
/// vertices adjacent to left vertex `l`.
///
/// Returns `(size, match_left, match_right)` where `match_left[l]` is the
/// right vertex matched to `l` (or `usize::MAX` if unmatched), and
/// symmetrically for `match_right`.
pub fn hopcroft_karp(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<usize>],
) -> (usize, Vec<usize>, Vec<usize>) {
    assert_eq!(adj.len(), n_left, "adjacency list must have one entry per left vertex");
    debug_assert!(adj.iter().flatten().all(|&r| r < n_right), "right index out of range");

    let mut match_left = vec![NIL; n_left];
    let mut match_right = vec![NIL; n_right];
    let mut dist = vec![INF; n_left];
    let mut size = 0usize;

    loop {
        // BFS phase: compute layered distances from free left vertices.
        let mut queue = VecDeque::new();
        for l in 0..n_left {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = match_right[r];
                if next == NIL {
                    found_augmenting_layer = true;
                } else if dist[next] == INF {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest augmenting paths.
        for l in 0..n_left {
            if match_left[l] == NIL && dfs(l, adj, &mut match_left, &mut match_right, &mut dist) {
                size += 1;
            }
        }
    }
    (size, match_left, match_right)
}

fn dfs(
    l: usize,
    adj: &[Vec<usize>],
    match_left: &mut [usize],
    match_right: &mut [usize],
    dist: &mut [u32],
) -> bool {
    for &r in &adj[l] {
        let next = match_right[r];
        if next == NIL
            || (dist[next] == dist[l] + 1 && dfs(next, adj, match_left, match_right, dist))
        {
            match_left[l] = r;
            match_right[r] = l;
            return true;
        }
    }
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let (size, ml, mr) = hopcroft_karp(4, 4, &adj);
        assert_eq!(size, 4);
        // Every left vertex matched, matching is consistent.
        for (l, &r) in ml.iter().enumerate() {
            assert_ne!(r, usize::MAX);
            assert_eq!(mr[r], l);
        }
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let adj: Vec<Vec<usize>> = vec![vec![]; 3];
        let (size, ml, _) = hopcroft_karp(3, 2, &adj);
        assert_eq!(size, 0);
        assert!(ml.iter().all(|&r| r == usize::MAX));
    }

    #[test]
    fn requires_augmenting_path_to_improve_greedy() {
        // Greedy that matches l0-r0 first would block the perfect matching;
        // Hopcroft-Karp must find it via an augmenting path.
        // l0: {r0, r1}, l1: {r0}
        let adj = vec![vec![0, 1], vec![0]];
        let (size, ml, _) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 2);
        assert_eq!(ml[1], 0);
        assert_eq!(ml[0], 1);
    }

    #[test]
    fn unbalanced_sides() {
        // 5 left vertices all adjacent only to r0.
        let adj = vec![vec![0]; 5];
        let (size, _, mr) = hopcroft_karp(5, 1, &adj);
        assert_eq!(size, 1);
        assert_ne!(mr[0], usize::MAX);
    }

    #[test]
    fn zero_sized_sides() {
        let (size, ml, mr) = hopcroft_karp(0, 0, &[]);
        assert_eq!(size, 0);
        assert!(ml.is_empty());
        assert!(mr.is_empty());
    }

    #[test]
    fn koenig_style_instance() {
        // A 3x3 instance whose maximum matching is 2.
        // l0: {r0}, l1: {r0, r1}, l2: {r1}
        let adj = vec![vec![0], vec![0, 1], vec![1]];
        let (size, _, _) = hopcroft_karp(3, 3, &adj);
        assert_eq!(size, 2);
    }
}
