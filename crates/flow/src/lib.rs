//! Flow-network and bipartite-matching substrate.
//!
//! The FTOA paper builds its offline guide (Algorithm 1) by instantiating the
//! predicted per-slot/per-cell counts of workers and tasks as the two sides of
//! a bipartite graph and computing a maximum-cardinality matching via max-flow
//! (Ford–Fulkerson in the paper; "any other max-flow algorithm is applicable").
//! The offline optimum `OPT` used as the evaluation yardstick is computed the
//! same way over the *actual* arrivals. The proof of Lemma 2 additionally uses
//! the canonical min-cut extracted from the residual network.
//!
//! This crate provides all of those building blocks, implemented from
//! scratch:
//!
//! * [`FlowNetwork`] — a residual flow network with integer capacities.
//! * [`edmonds_karp`][mod@edmonds_karp] — BFS-based Ford–Fulkerson (the paper's reference
//!   implementation).
//! * [`dinic`][mod@dinic] — the asymptotically faster algorithm used by default for the
//!   large guide/OPT instances.
//! * [`hopcroft_karp`][mod@hopcroft_karp] — a dedicated maximum bipartite matching algorithm,
//!   used both as an independent cross-check in tests and as a fast path.
//! * [`min_cost_max_flow`] — min-cost max-flow, for the paper's remark that a
//!   travel-cost-weighted guide can be derived with a mincost-maxflow solver.
//! * [`min_cut_from_residual`] — the reachability cut of the residual network.
//! * [`BipartiteGraph`] — a convenience wrapper that hides the source/sink
//!   plumbing and returns matchings as `(left, right)` index pairs.

pub mod bipartite;
pub mod dinic;
pub mod edmonds_karp;
pub mod hopcroft_karp;
pub mod min_cost;
pub mod min_cut;
pub mod network;

pub use bipartite::{BipartiteGraph, Matching, MaxFlowEngine};
pub use dinic::dinic;
pub use edmonds_karp::edmonds_karp;
pub use hopcroft_karp::hopcroft_karp;
pub use min_cost::{min_cost_max_flow, McmfResult};
pub use min_cut::{min_cut_from_residual, MinCut};
pub use network::{EdgeId, FlowNetwork, NodeId};
