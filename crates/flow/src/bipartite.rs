//! Bipartite-matching convenience layer.
//!
//! [`BipartiteGraph`] hides the source/sink plumbing of the flow formulation
//! used by Algorithm 1 of the paper and returns matchings as plain
//! `(left, right)` index pairs, which is the shape the guide generator and
//! the OPT oracle in `ftoa-core` consume.

use crate::dinic::dinic;
use crate::edmonds_karp::edmonds_karp;
use crate::hopcroft_karp::hopcroft_karp;
use crate::min_cost::{min_cost_max_flow, McmfNetwork};
use crate::network::FlowNetwork;

/// Which max-flow engine to use when computing a matching through the flow
/// formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFlowEngine {
    /// BFS Ford–Fulkerson, as cited in the paper (Algorithm 1, line 10).
    EdmondsKarp,
    /// Dinic's algorithm (default for large instances).
    Dinic,
    /// Hopcroft–Karp, bypassing the explicit flow network entirely.
    HopcroftKarp,
}

/// A matching between the left and right vertex sets of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Matched pairs `(left, right)`.
    pub pairs: Vec<(usize, usize)>,
    /// For each left vertex, the matched right vertex (if any).
    pub left_to_right: Vec<Option<usize>>,
    /// For each right vertex, the matched left vertex (if any).
    pub right_to_left: Vec<Option<usize>>,
    /// Total cost of the matching when costs were supplied, otherwise 0.
    pub total_cost: i64,
}

impl Matching {
    /// Cardinality of the matching.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the matching empty?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Is the matching internally consistent (both direction maps agree with
    /// `pairs`, no vertex matched twice)?
    pub fn is_consistent(&self) -> bool {
        let mut seen_l = vec![false; self.left_to_right.len()];
        let mut seen_r = vec![false; self.right_to_left.len()];
        for &(l, r) in &self.pairs {
            if l >= seen_l.len() || r >= seen_r.len() || seen_l[l] || seen_r[r] {
                return false;
            }
            seen_l[l] = true;
            seen_r[r] = true;
            if self.left_to_right[l] != Some(r) || self.right_to_left[r] != Some(l) {
                return false;
            }
        }
        let matched_l = self.left_to_right.iter().filter(|x| x.is_some()).count();
        let matched_r = self.right_to_left.iter().filter(|x| x.is_some()).count();
        matched_l == self.pairs.len() && matched_r == self.pairs.len()
    }
}

/// A bipartite graph with `n_left` left vertices, `n_right` right vertices and
/// optionally cost-weighted edges.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    /// `adj[l]` lists `(r, cost)` pairs.
    adj: Vec<Vec<(usize, i64)>>,
    num_edges: usize,
}

impl BipartiteGraph {
    /// Create a bipartite graph with the given side sizes and no edges.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self { n_left, n_right, adj: vec![Vec::new(); n_left], num_edges: 0 }
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Add an (uncosted) edge between left vertex `l` and right vertex `r`.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        self.add_edge_with_cost(l, r, 0);
    }

    /// Add a cost-weighted edge (cost must be non-negative).
    pub fn add_edge_with_cost(&mut self, l: usize, r: usize, cost: i64) {
        assert!(l < self.n_left, "left vertex out of range");
        assert!(r < self.n_right, "right vertex out of range");
        assert!(cost >= 0, "negative edge cost");
        self.adj[l].push((r, cost));
        self.num_edges += 1;
    }

    /// Neighbours of a left vertex.
    pub fn neighbors(&self, l: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[l].iter().map(|&(r, _)| r)
    }

    /// Compute a maximum-cardinality matching with the requested engine.
    pub fn max_matching_with(&self, engine: MaxFlowEngine) -> Matching {
        match engine {
            MaxFlowEngine::HopcroftKarp => self.matching_hopcroft_karp(),
            MaxFlowEngine::EdmondsKarp | MaxFlowEngine::Dinic => self.matching_via_flow(engine),
        }
    }

    /// Compute a maximum-cardinality matching with the default engine
    /// (Hopcroft–Karp).
    pub fn max_matching(&self) -> Matching {
        self.max_matching_with(MaxFlowEngine::HopcroftKarp)
    }

    /// Compute a maximum-cardinality matching of minimum total edge cost
    /// (min-cost max-flow formulation). Ties in cardinality are broken by
    /// cost; cardinality is never sacrificed for cost.
    pub fn min_cost_max_matching(&self) -> Matching {
        // Node layout: 0 = source, 1..=n_left = left, then right, then sink.
        let s = 0usize;
        let left_base = 1usize;
        let right_base = 1 + self.n_left;
        let t = 1 + self.n_left + self.n_right;
        let mut net = McmfNetwork::with_nodes(t + 1);
        for l in 0..self.n_left {
            net.add_edge(s, left_base + l, 1, 0);
        }
        for r in 0..self.n_right {
            net.add_edge(right_base + r, t, 1, 0);
        }
        let mut edge_index = Vec::with_capacity(self.num_edges);
        for (l, nbrs) in self.adj.iter().enumerate() {
            for &(r, cost) in nbrs {
                let id = net.add_edge(left_base + l, right_base + r, 1, cost);
                edge_index.push((id, l, r, cost));
            }
        }
        let result = min_cost_max_flow(&mut net, s, t);
        let mut pairs = Vec::with_capacity(result.flow as usize);
        let mut left_to_right = vec![None; self.n_left];
        let mut right_to_left = vec![None; self.n_right];
        let mut total_cost = 0;
        for &(id, l, r, cost) in &edge_index {
            if result.edge_flows[id] > 0 {
                pairs.push((l, r));
                left_to_right[l] = Some(r);
                right_to_left[r] = Some(l);
                total_cost += cost;
            }
        }
        Matching { pairs, left_to_right, right_to_left, total_cost }
    }

    fn matching_hopcroft_karp(&self) -> Matching {
        let adj: Vec<Vec<usize>> =
            self.adj.iter().map(|nbrs| nbrs.iter().map(|&(r, _)| r).collect()).collect();
        let (_size, ml, mr) = hopcroft_karp(self.n_left, self.n_right, &adj);
        let left_to_right: Vec<Option<usize>> =
            ml.iter().map(|&r| if r == usize::MAX { None } else { Some(r) }).collect();
        let right_to_left: Vec<Option<usize>> =
            mr.iter().map(|&l| if l == usize::MAX { None } else { Some(l) }).collect();
        let pairs: Vec<(usize, usize)> =
            left_to_right.iter().enumerate().filter_map(|(l, r)| r.map(|r| (l, r))).collect();
        Matching { pairs, left_to_right, right_to_left, total_cost: 0 }
    }

    fn matching_via_flow(&self, engine: MaxFlowEngine) -> Matching {
        let s = 0usize;
        let left_base = 1usize;
        let right_base = 1 + self.n_left;
        let t = 1 + self.n_left + self.n_right;
        let mut net = FlowNetwork::with_nodes(t + 1);
        for l in 0..self.n_left {
            net.add_edge(s, left_base + l, 1);
        }
        for r in 0..self.n_right {
            net.add_edge(right_base + r, t, 1);
        }
        let mut edge_ids = Vec::with_capacity(self.num_edges);
        for (l, nbrs) in self.adj.iter().enumerate() {
            for &(r, _cost) in nbrs {
                let e = net.add_edge(left_base + l, right_base + r, 1);
                edge_ids.push((e, l, r));
            }
        }
        match engine {
            MaxFlowEngine::EdmondsKarp => edmonds_karp(&mut net, s, t),
            _ => dinic(&mut net, s, t),
        };
        let mut pairs = Vec::new();
        let mut left_to_right = vec![None; self.n_left];
        let mut right_to_left = vec![None; self.n_right];
        for &(e, l, r) in &edge_ids {
            if net.flow_on(e) > 0 {
                pairs.push((l, r));
                left_to_right[l] = Some(r);
                right_to_left[r] = Some(l);
            }
        }
        Matching { pairs, left_to_right, right_to_left, total_cost: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> BipartiteGraph {
        // l0: {r0, r1}, l1: {r0}, l2: {r2}. Max matching 3.
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        g
    }

    #[test]
    fn all_engines_agree_on_cardinality() {
        let g = sample_graph();
        let hk = g.max_matching_with(MaxFlowEngine::HopcroftKarp);
        let ek = g.max_matching_with(MaxFlowEngine::EdmondsKarp);
        let di = g.max_matching_with(MaxFlowEngine::Dinic);
        assert_eq!(hk.len(), 3);
        assert_eq!(ek.len(), 3);
        assert_eq!(di.len(), 3);
        assert!(hk.is_consistent());
        assert!(ek.is_consistent());
        assert!(di.is_consistent());
    }

    #[test]
    fn min_cost_matching_prefers_cheap_edges_without_losing_cardinality() {
        let mut g = BipartiteGraph::new(2, 2);
        // Perfect matching must use the diagonal (cost 1 + 1 = 2) instead of
        // the tempting cheap edge (0,0) of cost 0 which would block it.
        g.add_edge_with_cost(0, 0, 0);
        g.add_edge_with_cost(0, 1, 1);
        g.add_edge_with_cost(1, 0, 1);
        let m = g.min_cost_max_matching();
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_cost, 2);
        assert!(m.is_consistent());
    }

    #[test]
    fn empty_graph_yields_empty_matching() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(g.max_matching().len(), 0);
        assert_eq!(g.min_cost_max_matching().len(), 0);
        let g2 = BipartiteGraph::new(3, 3);
        assert_eq!(g2.max_matching().len(), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn neighbors_iterates_added_edges() {
        let g = sample_graph();
        let n0: Vec<usize> = g.neighbors(0).collect();
        assert_eq!(n0, vec![0, 1]);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 3);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "left vertex out of range")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn matching_is_maximum_on_crown_graph() {
        // Crown-like graph where greedy can get stuck at n/2 but maximum is n.
        let n = 6;
        let mut g = BipartiteGraph::new(n, n);
        for l in 0..n {
            for r in 0..n {
                if l != r {
                    g.add_edge(l, r);
                }
            }
        }
        assert_eq!(g.max_matching().len(), n);
        assert_eq!(g.max_matching_with(MaxFlowEngine::Dinic).len(), n);
    }
}
