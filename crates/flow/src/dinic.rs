//! Dinic's algorithm: level graphs + blocking flows.
//!
//! `O(E * sqrt(V))` on unit-capacity bipartite networks, which is exactly the
//! shape of the offline-guide and OPT instances; this is the default solver
//! used by `ftoa-core` for large instances.

use crate::network::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Compute the maximum flow from `source` to `sink` with Dinic's algorithm,
/// mutating residual capacities in place. Returns the flow value.
pub fn dinic(net: &mut FlowNetwork, source: NodeId, sink: NodeId) -> i64 {
    assert!(source < net.num_nodes() && sink < net.num_nodes(), "source/sink out of range");
    if source == sink {
        return 0;
    }
    let n = net.num_nodes();
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    let mut total = 0i64;

    loop {
        // Build the level graph with BFS.
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for &e in net.edges_from(v) {
                let to = net.edge_target(e);
                if net.residual_capacity(e) > 0 && level[to] < 0 {
                    level[to] = level[v] + 1;
                    queue.push_back(to);
                }
            }
        }
        if level[sink] < 0 {
            break;
        }
        for it in iter.iter_mut() {
            *it = 0;
        }
        // Repeatedly find augmenting paths in the level graph (blocking flow)
        // using an iterative DFS to avoid recursion-depth issues on the very
        // large scalability instances (|W| = |R| = 1M).
        loop {
            let pushed = dfs_augment(net, source, sink, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
    total
}

/// Iterative DFS that pushes one augmenting path worth of flow through the
/// level graph. Returns the amount pushed (0 if no path exists).
fn dfs_augment(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    level: &[i32],
    iter: &mut [usize],
) -> i64 {
    // Stack of (node, edge taken to get here). The path is implicit in the stack.
    let mut path: Vec<usize> = Vec::new(); // edge ids along the current path
    let mut current = source;
    loop {
        if current == sink {
            // Found a path; compute bottleneck and push.
            let bottleneck = path.iter().map(|&e| net.residual_capacity(e)).min().unwrap_or(0);
            for &e in &path {
                net.push(e, bottleneck);
            }
            return bottleneck;
        }
        let mut advanced = false;
        while iter[current] < net.edges_from(current).len() {
            let e = net.edges_from(current)[iter[current]];
            let to = net.edge_target(e);
            if net.residual_capacity(e) > 0 && level[to] == level[current] + 1 {
                path.push(e);
                current = to;
                advanced = true;
                break;
            }
            iter[current] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat.
        if current == source {
            return 0;
        }
        let e = path.pop().expect("non-source dead end has a parent edge");
        let parent = net.edge_target(e ^ 1);
        // Exhaust this edge at the parent so we do not retry it.
        iter[parent] += 1;
        current = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edmonds_karp::edmonds_karp;

    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut g = FlowNetwork::with_nodes(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        (g, s, t)
    }

    #[test]
    fn clrs_example_has_flow_23() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(dinic(&mut g, s, t), 23);
        assert!(g.check_flow_conservation(s, t));
    }

    #[test]
    fn agrees_with_edmonds_karp_on_random_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG so the test does
        // not need an RNG dependency here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 4 + (trial % 8);
            let mut a = FlowNetwork::with_nodes(n);
            let mut b = FlowNetwork::with_nodes(n);
            for _ in 0..(2 * n) {
                let from = (next() as usize) % n;
                let to = (next() as usize) % n;
                if from == to {
                    continue;
                }
                let cap = (next() % 20) as i64;
                a.add_edge(from, to, cap);
                b.add_edge(from, to, cap);
            }
            let fa = dinic(&mut a, 0, n - 1);
            let fb = edmonds_karp(&mut b, 0, n - 1);
            assert_eq!(fa, fb, "trial {trial}");
            assert!(a.check_flow_conservation(0, n - 1));
        }
    }

    #[test]
    fn unit_capacity_bipartite_instance() {
        // 3 left, 3 right, perfect matching exists.
        // Nodes: 0 = s, 1..=3 left, 4..=6 right, 7 = t.
        let mut g = FlowNetwork::with_nodes(8);
        for l in 1..=3 {
            g.add_edge(0, l, 1);
        }
        for r in 4..=6 {
            g.add_edge(r, 7, 1);
        }
        g.add_edge(1, 4, 1);
        g.add_edge(1, 5, 1);
        g.add_edge(2, 5, 1);
        g.add_edge(3, 6, 1);
        assert_eq!(dinic(&mut g, 0, 7), 3);
    }

    #[test]
    fn empty_network_has_zero_flow() {
        let mut g = FlowNetwork::with_nodes(2);
        assert_eq!(dinic(&mut g, 0, 1), 0);
        assert_eq!(dinic(&mut g, 0, 0), 0);
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // A 100k-node chain exercises the iterative DFS.
        let n = 100_000;
        let mut g = FlowNetwork::with_nodes(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1, 2);
        }
        assert_eq!(dinic(&mut g, 0, n - 1), 2);
    }
}
