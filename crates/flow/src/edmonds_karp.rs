//! Edmonds–Karp: Ford–Fulkerson with BFS augmenting paths.
//!
//! This is the algorithm the paper cites for line 10 of Algorithm 1 (offline
//! guide generation). Complexity `O(V * E^2)` in general, `O(min(m, n) * E)`
//! on unit-capacity bipartite instances (each augmentation adds one unit).

use crate::network::{EdgeId, FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Compute the maximum flow from `source` to `sink`, mutating the residual
/// capacities of `net` in place. Returns the value of the maximum flow.
pub fn edmonds_karp(net: &mut FlowNetwork, source: NodeId, sink: NodeId) -> i64 {
    assert!(source < net.num_nodes() && sink < net.num_nodes(), "source/sink out of range");
    if source == sink {
        return 0;
    }
    let n = net.num_nodes();
    let mut total = 0i64;
    // parent_edge[v] = edge used to reach v in the BFS tree.
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    loop {
        for p in parent_edge.iter_mut() {
            *p = None;
        }
        // BFS over residual edges.
        let mut queue = VecDeque::new();
        queue.push_back(source);
        let mut reached_sink = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for &e in net.edges_from(v) {
                let to = net.edge_target(e);
                if net.residual_capacity(e) > 0 && parent_edge[to].is_none() && to != source {
                    parent_edge[to] = Some(e);
                    if to == sink {
                        reached_sink = true;
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        if !reached_sink {
            break;
        }
        // Find the bottleneck along the path sink -> source.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != source {
            let e = parent_edge[v].expect("path edge");
            bottleneck = bottleneck.min(net.residual_capacity(e));
            v = net.edge_target(e ^ 1);
        }
        // Augment.
        let mut v = sink;
        while v != source {
            let e = parent_edge[v].expect("path edge");
            net.push(e, bottleneck);
            v = net.edge_target(e ^ 1);
        }
        total += bottleneck;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network with max flow 23.
    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut g = FlowNetwork::with_nodes(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        (g, s, t)
    }

    #[test]
    fn clrs_example_has_flow_23() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(edmonds_karp(&mut g, s, t), 23);
        assert!(g.check_flow_conservation(s, t));
        assert_eq!(g.flow_value(s), 23);
    }

    #[test]
    fn disconnected_graph_has_zero_flow() {
        let mut g = FlowNetwork::with_nodes(4);
        g.add_edge(0, 1, 10);
        g.add_edge(2, 3, 10);
        assert_eq!(edmonds_karp(&mut g, 0, 3), 0);
    }

    #[test]
    fn same_source_and_sink_is_zero() {
        let mut g = FlowNetwork::with_nodes(2);
        g.add_edge(0, 1, 3);
        assert_eq!(edmonds_karp(&mut g, 0, 0), 0);
    }

    #[test]
    fn parallel_edges_add_up() {
        let mut g = FlowNetwork::with_nodes(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(edmonds_karp(&mut g, 0, 1), 7);
    }

    #[test]
    fn flow_respects_bottleneck() {
        // s -> a -> t with capacities 10 and 1.
        let mut g = FlowNetwork::with_nodes(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 1);
        assert_eq!(edmonds_karp(&mut g, 0, 2), 1);
    }

    #[test]
    fn rerun_after_reset_gives_same_value() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(edmonds_karp(&mut g, s, t), 23);
        g.reset_flow();
        assert_eq!(edmonds_karp(&mut g, s, t), 23);
    }
}
