//! Minimum-cost maximum-flow (successive shortest augmenting paths).
//!
//! The paper notes (Section 4) that the offline guide can additionally
//! minimise total travel cost by weighting worker→task edges with the travel
//! time and running a mincost-maxflow algorithm. This module provides that
//! solver; `ftoa-core::guide` exposes it behind the `GuideObjective::MinCost`
//! option.
//!
//! Implementation: Bellman–Ford/SPFA-based successive shortest paths on the
//! residual network, which handles the (non-negative) travel costs used here
//! and tolerates the zero-cost source/sink edges.

use std::collections::VecDeque;

/// Result of a min-cost max-flow computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmfResult {
    /// Value of the maximum flow.
    pub flow: i64,
    /// Total cost of that flow (sum over edges of `flow_e * cost_e`).
    pub cost: i64,
    /// Flow routed through each forward edge, indexed by insertion order of
    /// [`McmfNetwork::add_edge`].
    pub edge_flows: Vec<i64>,
}

/// A small, self-contained network representation for min-cost max-flow.
/// (Kept separate from [`crate::FlowNetwork`] because edges carry costs.)
#[derive(Debug, Clone, Default)]
pub struct McmfNetwork {
    to: Vec<usize>,
    cap: Vec<i64>,
    cost: Vec<i64>,
    adj: Vec<Vec<usize>>,
    /// Map from public edge index to internal forward arc index.
    forward_arcs: Vec<usize>,
}

impl McmfNetwork {
    /// Create a network with `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            to: vec![],
            cap: vec![],
            cost: vec![],
            adj: vec![Vec::new(); n],
            forward_arcs: vec![],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge with capacity and non-negative cost; returns its
    /// public index (dense, in insertion order).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> usize {
        assert!(from < self.adj.len() && to < self.adj.len(), "edge endpoint out of range");
        assert!(cap >= 0, "negative capacity");
        assert!(cost >= 0, "negative cost not supported");
        let arc = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.cost.push(cost);
        self.to.push(from);
        self.cap.push(0);
        self.cost.push(-cost);
        self.adj[from].push(arc);
        self.adj[to].push(arc + 1);
        self.forward_arcs.push(arc);
        self.forward_arcs.len() - 1
    }
}

/// Compute the minimum-cost maximum flow from `source` to `sink`.
pub fn min_cost_max_flow(net: &mut McmfNetwork, source: usize, sink: usize) -> McmfResult {
    assert!(source < net.num_nodes() && sink < net.num_nodes(), "source/sink out of range");
    let n = net.num_nodes();
    let mut flow = 0i64;
    let mut cost = 0i64;
    if source == sink || n == 0 {
        return McmfResult { flow, cost, edge_flows: vec![0; net.forward_arcs.len()] };
    }
    loop {
        // SPFA to find the cheapest augmenting path in the residual graph.
        let mut dist = vec![i64::MAX; n];
        let mut in_queue = vec![false; n];
        let mut parent_arc = vec![usize::MAX; n];
        dist[source] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        in_queue[source] = true;
        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            for &arc in &net.adj[v] {
                if net.cap[arc] > 0 {
                    let u = net.to[arc];
                    let nd = dist[v] + net.cost[arc];
                    if nd < dist[u] {
                        dist[u] = nd;
                        parent_arc[u] = arc;
                        if !in_queue[u] {
                            in_queue[u] = true;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }
        if dist[sink] == i64::MAX {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != source {
            let arc = parent_arc[v];
            bottleneck = bottleneck.min(net.cap[arc]);
            v = net.to[arc ^ 1];
        }
        // Augment.
        let mut v = sink;
        while v != source {
            let arc = parent_arc[v];
            net.cap[arc] -= bottleneck;
            net.cap[arc ^ 1] += bottleneck;
            v = net.to[arc ^ 1];
        }
        flow += bottleneck;
        cost += bottleneck * dist[sink];
    }
    let edge_flows = net
        .forward_arcs
        .iter()
        .map(|&arc| net.cap[arc ^ 1]) // reverse arc capacity equals pushed flow
        .collect();
    McmfResult { flow, cost, edge_flows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_cheaper_path_at_equal_flow() {
        // Two disjoint s->t paths of capacity 1: costs 5 and 1. Max flow 2,
        // min cost 6.
        let mut g = McmfNetwork::with_nodes(4);
        let e_a = g.add_edge(0, 1, 1, 5);
        g.add_edge(1, 3, 1, 0);
        let e_b = g.add_edge(0, 2, 1, 1);
        g.add_edge(2, 3, 1, 0);
        let r = min_cost_max_flow(&mut g, 0, 3);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 6);
        assert_eq!(r.edge_flows[e_a], 1);
        assert_eq!(r.edge_flows[e_b], 1);
    }

    #[test]
    fn cheap_path_is_used_first_when_capacity_limited() {
        // Single unit of demand, two paths with costs 1 and 10 — only the
        // cheap one carries flow.
        let mut g = McmfNetwork::with_nodes(4);
        let cheap = g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 0);
        let dear = g.add_edge(0, 2, 1, 10);
        g.add_edge(2, 3, 1, 0);
        // Restrict the sink side to one unit total.
        let mut g2 = McmfNetwork::with_nodes(5);
        let cheap2 = g2.add_edge(0, 1, 1, 1);
        g2.add_edge(1, 3, 1, 0);
        let dear2 = g2.add_edge(0, 2, 1, 10);
        g2.add_edge(2, 3, 1, 0);
        g2.add_edge(3, 4, 1, 0);
        let r2 = min_cost_max_flow(&mut g2, 0, 4);
        assert_eq!(r2.flow, 1);
        assert_eq!(r2.cost, 1);
        assert_eq!(r2.edge_flows[cheap2], 1);
        assert_eq!(r2.edge_flows[dear2], 0);
        // Sanity: the unrestricted version uses both.
        let r = min_cost_max_flow(&mut g, 0, 3);
        assert_eq!(r.flow, 2);
        assert_eq!(r.edge_flows[cheap], 1);
        assert_eq!(r.edge_flows[dear], 1);
    }

    #[test]
    fn assignment_instance_picks_min_cost_perfect_matching() {
        // 2 workers, 2 tasks. Costs: w0-r0=1, w0-r1=5, w1-r0=5, w1-r1=1.
        // Min-cost perfect matching = 2 (diagonal).
        let mut g = McmfNetwork::with_nodes(6);
        let s = 0;
        let t = 5;
        g.add_edge(s, 1, 1, 0);
        g.add_edge(s, 2, 1, 0);
        g.add_edge(3, t, 1, 0);
        g.add_edge(4, t, 1, 0);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(1, 4, 1, 5);
        g.add_edge(2, 3, 1, 5);
        g.add_edge(2, 4, 1, 1);
        let r = min_cost_max_flow(&mut g, s, t);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2);
    }

    #[test]
    fn zero_flow_when_no_path() {
        let mut g = McmfNetwork::with_nodes(3);
        g.add_edge(0, 1, 5, 1);
        let r = min_cost_max_flow(&mut g, 0, 2);
        assert_eq!(r.flow, 0);
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn degenerate_source_equals_sink() {
        let mut g = McmfNetwork::with_nodes(2);
        g.add_edge(0, 1, 1, 1);
        let r = min_cost_max_flow(&mut g, 0, 0);
        assert_eq!(r.flow, 0);
    }
}
