//! Minimum s–t cut extraction from a residual network.
//!
//! After running a max-flow algorithm, the set `S` of nodes reachable from the
//! source in the residual graph and its complement `T` form a minimum cut
//! (max-flow/min-cut theorem). The paper uses exactly this "canonical
//! reachability cut" in the proof of Lemma 2 to bound `OPT`; here it is also
//! exposed for diagnostics (which guide nodes are saturated) and tests.

use crate::network::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// A minimum s–t cut `(S, T)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// `in_source_side[v]` is true iff `v` is reachable from the source in the
    /// residual network (i.e. `v ∈ S`).
    pub in_source_side: Vec<bool>,
    /// Total capacity of the cut edges (edges from `S` to `T`).
    pub capacity: i64,
    /// The cut edges as `(from, to, capacity)` triples.
    pub cut_edges: Vec<(NodeId, NodeId, i64)>,
}

/// Extract the canonical minimum cut from a network on which a max-flow
/// algorithm has already been run (i.e. whose residual capacities reflect a
/// maximum flow).
pub fn min_cut_from_residual(net: &FlowNetwork, source: NodeId) -> MinCut {
    let n = net.num_nodes();
    let mut reachable = vec![false; n];
    if n == 0 {
        return MinCut { in_source_side: reachable, capacity: 0, cut_edges: vec![] };
    }
    reachable[source] = true;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &e in net.edges_from(v) {
            let to = net.edge_target(e);
            if net.residual_capacity(e) > 0 && !reachable[to] {
                reachable[to] = true;
                queue.push_back(to);
            }
        }
    }
    let mut capacity = 0;
    let mut cut_edges = Vec::new();
    for (from, to, cap, _flow) in net.iter_forward_edges() {
        if reachable[from] && !reachable[to] {
            capacity += cap;
            cut_edges.push((from, to, cap));
        }
    }
    MinCut { in_source_side: reachable, capacity, cut_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic;
    use crate::edmonds_karp::edmonds_karp;

    #[test]
    fn min_cut_equals_max_flow_on_clrs_example() {
        let mut g = FlowNetwork::with_nodes(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        let flow = dinic(&mut g, s, t);
        let cut = min_cut_from_residual(&g, s);
        assert_eq!(flow, 23);
        assert_eq!(cut.capacity, 23);
        assert!(cut.in_source_side[s]);
        assert!(!cut.in_source_side[t]);
    }

    #[test]
    fn bipartite_cut_matches_koenig_vertex_cover_size() {
        // Unit-capacity bipartite instance with maximum matching 2: the cut
        // capacity equals the matching size (König's theorem via max-flow).
        let mut g = FlowNetwork::with_nodes(8);
        let s = 0;
        let t = 7;
        for l in 1..=3 {
            g.add_edge(s, l, 1);
        }
        for r in 4..=6 {
            g.add_edge(r, t, 1);
        }
        g.add_edge(1, 4, 1);
        g.add_edge(2, 4, 1);
        g.add_edge(2, 5, 1);
        g.add_edge(3, 5, 1);
        let flow = edmonds_karp(&mut g, s, t);
        let cut = min_cut_from_residual(&g, s);
        assert_eq!(flow, 2);
        assert_eq!(cut.capacity, 2);
        assert_eq!(cut.cut_edges.iter().map(|&(_, _, c)| c).sum::<i64>(), 2);
    }

    #[test]
    fn cut_on_zero_flow_network_is_zero_when_source_isolated() {
        let mut g = FlowNetwork::with_nodes(3);
        g.add_edge(1, 2, 5);
        let flow = dinic(&mut g, 0, 2);
        let cut = min_cut_from_residual(&g, 0);
        assert_eq!(flow, 0);
        assert_eq!(cut.capacity, 0);
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn empty_network() {
        let g = FlowNetwork::with_nodes(0);
        let cut = min_cut_from_residual(&g, 0);
        assert_eq!(cut.capacity, 0);
    }
}
