//! Property-based tests: the spatial indexes agree with brute force.

use ftoa_types::{BoundingBox, Location};
use proptest::prelude::*;
use spatial::{GridBucketIndex, KdTree};

fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..120)
}

fn brute_nearest(pts: &[(f64, f64)], q: &Location) -> f64 {
    pts.iter().map(|&(x, y)| q.distance(&Location::new(x, y))).fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_nearest_matches_brute_force(
        pts in points_strategy(),
        qx in -10.0f64..110.0,
        qy in -10.0f64..110.0,
    ) {
        let tree = KdTree::build(
            pts.iter().enumerate().map(|(i, &(x, y))| (Location::new(x, y), i)).collect(),
        );
        let q = Location::new(qx, qy);
        let (_, _, d) = tree.nearest(&q).unwrap();
        let brute = brute_nearest(&pts, &q);
        prop_assert!((d - brute).abs() < 1e-9);
    }

    #[test]
    fn grid_index_nearest_matches_brute_force(
        pts in points_strategy(),
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
    ) {
        let mut idx = GridBucketIndex::new(BoundingBox::square(100.0), 8, 8);
        for (i, &(x, y)) in pts.iter().enumerate() {
            idx.insert(Location::new(x, y), i);
        }
        let q = Location::new(qx, qy);
        let (_, _, _, d) = idx.nearest_where(&q, |_, _| true).unwrap();
        let brute = brute_nearest(&pts, &q);
        prop_assert!((d - brute).abs() < 1e-9, "grid {} vs brute {}", d, brute);
    }

    #[test]
    fn kdtree_radius_query_matches_brute_force(
        pts in points_strategy(),
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
        radius in 0.0f64..60.0,
    ) {
        let tree = KdTree::build(
            pts.iter().enumerate().map(|(i, &(x, y))| (Location::new(x, y), i)).collect(),
        );
        let q = Location::new(qx, qy);
        let found = tree.within_radius(&q, radius).len();
        let brute = pts
            .iter()
            .filter(|&&(x, y)| q.distance(&Location::new(x, y)) <= radius)
            .count();
        prop_assert_eq!(found, brute);
    }

    #[test]
    fn filtered_queries_agree_between_indexes(
        pts in points_strategy(),
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
        modulus in 2usize..5,
    ) {
        let q = Location::new(qx, qy);
        let tree = KdTree::build(
            pts.iter().enumerate().map(|(i, &(x, y))| (Location::new(x, y), i)).collect(),
        );
        let mut idx = GridBucketIndex::new(BoundingBox::square(100.0), 8, 8);
        for (i, &(x, y)) in pts.iter().enumerate() {
            idx.insert(Location::new(x, y), i);
        }
        let kd = tree.nearest_where(&q, |&p, _| p % modulus == 0).map(|(_, _, d)| d);
        let gi = idx.nearest_where(&q, |&p, _| p % modulus == 0).map(|(_, _, _, d)| d);
        match (kd, gi) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "one index found a point, the other did not: {:?}", other),
        }
    }
}
