//! Spatial substrate: distance metrics and nearest-neighbour indexes.
//!
//! The greedy baselines of the paper (SimpleGreedy and the batched GR
//! algorithm) repeatedly look for the *nearest feasible* counterpart of a
//! newly arrived object. This crate provides the spatial machinery for those
//! queries:
//!
//! * [`metric`] — Euclidean / Manhattan / haversine distances behind a common
//!   [`metric::DistanceMetric`] trait.
//! * [`grid_index`] — a dynamic uniform-grid bucket index supporting
//!   insertion, removal and expanding-ring nearest-neighbour queries with an
//!   arbitrary feasibility predicate. This is the index used online, because
//!   objects appear and disappear as they are matched or expire.
//! * [`kdtree`] — a static KD-tree used for bulk nearest-neighbour queries
//!   (and as an independent oracle in property tests).

pub mod grid_index;
pub mod kdtree;
pub mod metric;

pub use grid_index::GridBucketIndex;
pub use kdtree::KdTree;
pub use metric::{DistanceMetric, Euclidean, Haversine, Manhattan};
