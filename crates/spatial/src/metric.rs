//! Distance metrics over [`Location`]s.

use ftoa_types::Location;

/// A distance function between two locations.
pub trait DistanceMetric {
    /// The distance from `a` to `b` (non-negative, symmetric, zero iff equal
    /// for the metrics provided here).
    fn distance(&self, a: &Location, b: &Location) -> f64;
}

/// Straight-line (L2) distance in coordinate units — the paper's travel-cost
/// model (Definition 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl DistanceMetric for Euclidean {
    fn distance(&self, a: &Location, b: &Location) -> f64 {
        a.distance(b)
    }
}

/// L1 (taxicab) distance: a common alternative travel model on road grids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl DistanceMetric for Manhattan {
    fn distance(&self, a: &Location, b: &Location) -> f64 {
        a.manhattan_distance(b)
    }
}

/// Great-circle distance in kilometres, interpreting `x` as longitude and `y`
/// as latitude in degrees. Used by the city ("real data") workloads where one
/// grid cell is a 0.01° × 0.01° square.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Haversine;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0088;

impl DistanceMetric for Haversine {
    fn distance(&self, a: &Location, b: &Location) -> f64 {
        let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
        let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_and_manhattan_basic() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((Euclidean.distance(&a, &b) - 5.0).abs() < 1e-12);
        assert!((Manhattan.distance(&a, &b) - 7.0).abs() < 1e-12);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
        assert_eq!(Manhattan.distance(&b, &b), 0.0);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = Location::new(116.40, 39.90); // Beijing
        let b = Location::new(120.16, 30.29); // Hangzhou
        for m in [
            &Euclidean as &dyn DistanceMetric,
            &Manhattan as &dyn DistanceMetric,
            &Haversine as &dyn DistanceMetric,
        ] {
            assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-9);
            assert!(m.distance(&a, &b) > 0.0);
        }
    }

    #[test]
    fn haversine_beijing_to_hangzhou_is_about_1100_km() {
        let beijing = Location::new(116.40, 39.90);
        let hangzhou = Location::new(120.16, 30.29);
        let d = Haversine.distance(&beijing, &hangzhou);
        assert!((1100.0..1200.0).contains(&d), "distance was {d} km");
    }

    #[test]
    fn haversine_one_degree_latitude_is_about_111_km() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(0.0, 1.0);
        let d = Haversine.distance(&a, &b);
        assert!((110.0..112.5).contains(&d), "distance was {d} km");
    }
}
