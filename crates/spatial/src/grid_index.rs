//! Dynamic uniform-grid bucket index with filtered nearest-neighbour queries.
//!
//! Online greedy algorithms need to answer "what is the nearest *feasible*
//! pending object to this location?" where feasibility depends on deadlines
//! and therefore changes over time. The index stores `(Location, payload)`
//! entries in grid buckets and answers nearest-neighbour queries with an
//! expanding ring search, applying a caller-supplied predicate to every
//! candidate so that infeasible entries are skipped without being removed.

use ftoa_types::{BoundingBox, Location};

/// An entry handle returned by [`GridBucketIndex::insert`]; can be used to
/// remove the entry later in `O(bucket size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHandle {
    bucket: usize,
    key: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: u64,
    location: Location,
    payload: T,
}

/// A uniform-grid spatial index over a bounded region.
#[derive(Debug, Clone)]
pub struct GridBucketIndex<T> {
    bounds: BoundingBox,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<Entry<T>>>,
    next_key: u64,
    len: usize,
}

impl<T: Clone> GridBucketIndex<T> {
    /// Create an index over `bounds` with `nx × ny` buckets.
    pub fn new(bounds: BoundingBox, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "index must have at least one bucket per axis");
        Self { bounds, nx, ny, buckets: vec![Vec::new(); nx * ny], next_key: 0, len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_coords(&self, l: &Location) -> (usize, usize) {
        let cw = self.bounds.width() / self.nx as f64;
        let ch = self.bounds.height() / self.ny as f64;
        let cx = (((l.x - self.bounds.min_x) / cw).floor() as isize).clamp(0, self.nx as isize - 1);
        let cy = (((l.y - self.bounds.min_y) / ch).floor() as isize).clamp(0, self.ny as isize - 1);
        (cx as usize, cy as usize)
    }

    fn bucket_of(&self, l: &Location) -> usize {
        let (cx, cy) = self.bucket_coords(l);
        cy * self.nx + cx
    }

    /// Insert an entry, returning a handle that can be used for removal.
    pub fn insert(&mut self, location: Location, payload: T) -> EntryHandle {
        let bucket = self.bucket_of(&location);
        let key = self.next_key;
        self.next_key += 1;
        self.buckets[bucket].push(Entry { key, location, payload });
        self.len += 1;
        EntryHandle { bucket, key }
    }

    /// Remove an entry by handle. Returns the payload if it was still present.
    pub fn remove(&mut self, handle: EntryHandle) -> Option<T> {
        let bucket = &mut self.buckets[handle.bucket];
        if let Some(pos) = bucket.iter().position(|e| e.key == handle.key) {
            let entry = bucket.swap_remove(pos);
            self.len -= 1;
            Some(entry.payload)
        } else {
            None
        }
    }

    /// Find the nearest entry to `query` (Euclidean distance) among those for
    /// which `feasible` returns true. Returns `(handle, location, payload,
    /// distance)`.
    ///
    /// The search expands ring by ring; it terminates as soon as the best
    /// candidate found so far is closer than the inner edge of the next ring,
    /// so the result is exact.
    pub fn nearest_where<F>(
        &self,
        query: &Location,
        feasible: F,
    ) -> Option<(EntryHandle, Location, T, f64)>
    where
        F: FnMut(&T, &Location) -> bool,
    {
        self.nearest_within(query, f64::INFINITY, feasible)
    }

    /// Like [`Self::nearest_where`], but only considers entries within
    /// `max_radius` of the query (inclusive). The ring expansion stops as
    /// soon as every remaining ring lies entirely outside the radius, so
    /// queries that cannot succeed terminate after scanning a disk instead
    /// of the whole index — this is the *reachable disk* pruning online
    /// algorithms use (a candidate farther than the disk radius can never
    /// satisfy the deadline constraint anyway).
    pub fn nearest_within<F>(
        &self,
        query: &Location,
        max_radius: f64,
        feasible: F,
    ) -> Option<(EntryHandle, Location, T, f64)>
    where
        F: FnMut(&T, &Location) -> bool,
    {
        self.nearest_within_counted(query, max_radius, feasible).0
    }

    /// [`Self::nearest_within`] that additionally reports how many stored
    /// entries the query *scanned* (had their distance computed), which is
    /// the backend-comparable measure of query work an exhaustive scan
    /// would spend on every live entry.
    pub fn nearest_within_counted<F>(
        &self,
        query: &Location,
        max_radius: f64,
        mut feasible: F,
    ) -> (Option<(EntryHandle, Location, T, f64)>, u64)
    where
        F: FnMut(&T, &Location) -> bool,
    {
        let mut scanned = 0u64;
        if self.len == 0 || max_radius < 0.0 {
            return (None, scanned);
        }
        let cw = self.bounds.width() / self.nx as f64;
        let ch = self.bounds.height() / self.ny as f64;
        let min_cell = cw.min(ch);
        let (qx, qy) = self.bucket_coords(query);
        let max_ring = self.nx.max(self.ny);
        let mut best: Option<(EntryHandle, Location, T, f64)> = None;

        for ring in 0..=max_ring {
            // A point in ring `ring` is at least `(ring - 1) * min_cell` away
            // from the query. Once we have a candidate closer than that — or
            // the whole ring lies beyond `max_radius` — we are done.
            if ring >= 1 {
                let ring_min_dist = (ring as f64 - 1.0) * min_cell;
                if ring_min_dist > max_radius {
                    break;
                }
                if let Some((_, _, _, best_d)) = &best {
                    if *best_d <= ring_min_dist {
                        break;
                    }
                }
            }
            let mut any_bucket_in_ring = false;
            for (bx, by) in ring_coords(qx, qy, ring, self.nx, self.ny) {
                any_bucket_in_ring = true;
                for entry in &self.buckets[by * self.nx + bx] {
                    scanned += 1;
                    let d = query.distance(&entry.location);
                    if d > max_radius {
                        continue;
                    }
                    if !feasible(&entry.payload, &entry.location) {
                        continue;
                    }
                    let better = match &best {
                        None => true,
                        Some((_, _, _, bd)) => d < *bd,
                    };
                    if better {
                        best = Some((
                            EntryHandle { bucket: by * self.nx + bx, key: entry.key },
                            entry.location,
                            entry.payload.clone(),
                            d,
                        ));
                    }
                }
            }
            if !any_bucket_in_ring && best.is_some() {
                break;
            }
        }
        (best, scanned)
    }

    /// Iterate over all entries (in unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&Location, &T)> {
        self.buckets.iter().flatten().map(|e| (&e.location, &e.payload))
    }

    /// Visit every entry within `radius` of `center` (Euclidean, inclusive).
    ///
    /// Only the buckets overlapping the query disk's bounding square are
    /// scanned, so the cost is proportional to the local density rather than
    /// the total number of entries. This is the range query online algorithms
    /// use to enumerate the candidates inside a worker's (or task's)
    /// reachable disk.
    pub fn for_each_within<F>(&self, center: &Location, radius: f64, visit: F)
    where
        F: FnMut(&Location, &T),
    {
        let _ = self.for_each_within_counted(center, radius, visit);
    }

    /// [`Self::for_each_within`] that additionally reports how many stored
    /// entries the query scanned (see [`Self::nearest_within_counted`]).
    pub fn for_each_within_counted<F>(&self, center: &Location, radius: f64, mut visit: F) -> u64
    where
        F: FnMut(&Location, &T),
    {
        let mut scanned = 0u64;
        if self.len == 0 || radius < 0.0 {
            return scanned;
        }
        let (min_bx, min_by) =
            self.bucket_coords(&Location::new(center.x - radius, center.y - radius));
        let (max_bx, max_by) =
            self.bucket_coords(&Location::new(center.x + radius, center.y + radius));
        let r2 = radius * radius;
        for by in min_by..=max_by {
            for bx in min_bx..=max_bx {
                for entry in &self.buckets[by * self.nx + bx] {
                    scanned += 1;
                    if center.distance_sq(&entry.location) <= r2 {
                        visit(&entry.location, &entry.payload);
                    }
                }
            }
        }
        scanned
    }

    /// Retain only the entries for which the predicate returns true.
    pub fn retain<F>(&mut self, mut keep: F)
    where
        F: FnMut(&T, &Location) -> bool,
    {
        let mut removed = 0;
        for bucket in &mut self.buckets {
            let before = bucket.len();
            bucket.retain(|e| keep(&e.payload, &e.location));
            removed += before - bucket.len();
        }
        self.len -= removed;
    }
}

/// The bucket coordinates forming the square ring at Chebyshev distance
/// `ring` around `(qx, qy)`, clipped to the index bounds.
fn ring_coords(
    qx: usize,
    qy: usize,
    ring: usize,
    nx: usize,
    ny: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let qx = qx as isize;
    let qy = qy as isize;
    let r = ring as isize;
    let mut coords = Vec::new();
    if ring == 0 {
        coords.push((qx, qy));
    } else {
        for dx in -r..=r {
            coords.push((qx + dx, qy - r));
            coords.push((qx + dx, qy + r));
        }
        for dy in (-r + 1)..r {
            coords.push((qx - r, qy + dy));
            coords.push((qx + r, qy + dy));
        }
    }
    coords
        .into_iter()
        .filter(move |&(x, y)| x >= 0 && y >= 0 && (x as usize) < nx && (y as usize) < ny)
        .map(|(x, y)| (x as usize, y as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> GridBucketIndex<usize> {
        GridBucketIndex::new(BoundingBox::square(100.0), 10, 10)
    }

    #[test]
    fn insert_and_len() {
        let mut idx = index();
        assert!(idx.is_empty());
        idx.insert(Location::new(5.0, 5.0), 1);
        idx.insert(Location::new(95.0, 95.0), 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.iter().count(), 2);
    }

    #[test]
    fn nearest_finds_closest_entry() {
        let mut idx = index();
        idx.insert(Location::new(10.0, 10.0), 1);
        idx.insert(Location::new(50.0, 50.0), 2);
        idx.insert(Location::new(90.0, 90.0), 3);
        let (_, loc, payload, d) =
            idx.nearest_where(&Location::new(48.0, 48.0), |_, _| true).unwrap();
        assert_eq!(payload, 2);
        assert_eq!(loc, Location::new(50.0, 50.0));
        assert!((d - (8.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nearest_respects_feasibility_filter() {
        let mut idx = index();
        idx.insert(Location::new(10.0, 10.0), 1);
        idx.insert(Location::new(90.0, 90.0), 2);
        let res = idx.nearest_where(&Location::new(12.0, 12.0), |&p, _| p != 1).unwrap();
        assert_eq!(res.2, 2);
        let none = idx.nearest_where(&Location::new(12.0, 12.0), |_, _| false);
        assert!(none.is_none());
    }

    #[test]
    fn remove_by_handle() {
        let mut idx = index();
        let h1 = idx.insert(Location::new(10.0, 10.0), 1);
        idx.insert(Location::new(20.0, 20.0), 2);
        assert_eq!(idx.remove(h1), Some(1));
        assert_eq!(idx.remove(h1), None);
        assert_eq!(idx.len(), 1);
        let res = idx.nearest_where(&Location::new(10.0, 10.0), |_, _| true).unwrap();
        assert_eq!(res.2, 2);
    }

    #[test]
    fn nearest_is_exact_across_ring_boundaries() {
        // A far point in the same bucket vs. a near point in a neighbouring
        // bucket: the ring search must not stop too early.
        let mut idx = GridBucketIndex::new(BoundingBox::square(100.0), 4, 4);
        idx.insert(Location::new(20.0, 1.0), 1); // same bucket as query, far
        idx.insert(Location::new(26.0, 1.0), 2); // next bucket, near
        let res = idx.nearest_where(&Location::new(24.5, 1.0), |_, _| true).unwrap();
        assert_eq!(res.2, 2);
    }

    #[test]
    fn retain_drops_entries() {
        let mut idx = index();
        for i in 0..10 {
            idx.insert(Location::new(i as f64 * 10.0, 5.0), i);
        }
        idx.retain(|&p, _| p % 2 == 0);
        assert_eq!(idx.len(), 5);
        assert!(idx.iter().all(|(_, &p)| p % 2 == 0));
    }

    #[test]
    fn points_outside_bounds_are_clamped_into_edge_buckets() {
        let mut idx = index();
        idx.insert(Location::new(-50.0, -50.0), 7);
        let res = idx.nearest_where(&Location::new(0.0, 0.0), |_, _| true).unwrap();
        assert_eq!(res.2, 7);
    }
}
