//! Static 2-D KD-tree for nearest-neighbour queries.
//!
//! Built once over a point set (e.g. all pending tasks of a batch window in
//! the GR baseline) and queried many times. Supports exact nearest-neighbour
//! and filtered nearest-neighbour search.

use ftoa_types::Location;

#[derive(Debug, Clone)]
struct Node {
    /// Index into the `points` array of the point stored at this node.
    point: usize,
    left: Option<usize>,
    right: Option<usize>,
    /// Splitting axis: 0 = x, 1 = y.
    axis: u8,
}

/// A static KD-tree over `(Location, payload)` pairs.
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    points: Vec<(Location, T)>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl<T> KdTree<T> {
    /// Build a KD-tree from a list of points.
    pub fn build(points: Vec<(Location, T)>) -> Self {
        let n = points.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut tree = Self { points, nodes: Vec::with_capacity(n), root: None };
        if n > 0 {
            let root = tree.build_rec(&mut indices, 0);
            tree.root = Some(root);
        }
        tree
    }

    fn build_rec(&mut self, indices: &mut [usize], depth: usize) -> usize {
        let axis = (depth % 2) as u8;
        indices.sort_unstable_by(|&a, &b| {
            let ka = if axis == 0 { self.points[a].0.x } else { self.points[a].0.y };
            let kb = if axis == 0 { self.points[b].0.x } else { self.points[b].0.y };
            ka.total_cmp(&kb)
        });
        let mid = indices.len() / 2;
        let point = indices[mid];
        let node_id = self.nodes.len();
        self.nodes.push(Node { point, left: None, right: None, axis });
        // Recurse. Split the slice to satisfy the borrow checker.
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        if !left_slice.is_empty() {
            let l = self.build_rec(left_slice, depth + 1);
            self.nodes[node_id].left = Some(l);
        }
        if !right_slice.is_empty() {
            let r = self.build_rec(right_slice, depth + 1);
            self.nodes[node_id].right = Some(r);
        }
        node_id
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Exact nearest neighbour of `query`. Returns `(location, payload,
    /// distance)`.
    pub fn nearest(&self, query: &Location) -> Option<(&Location, &T, f64)> {
        self.nearest_where(query, |_, _| true)
    }

    /// Exact nearest neighbour among points accepted by `feasible`.
    pub fn nearest_where<F>(&self, query: &Location, feasible: F) -> Option<(&Location, &T, f64)>
    where
        F: FnMut(&T, &Location) -> bool,
    {
        self.nearest_within_where(query, f64::INFINITY, feasible)
    }

    /// Exact nearest neighbour within `max_radius` of `query` (inclusive)
    /// among points accepted by `feasible`.
    ///
    /// The radius seeds the branch-pruning bound *before* any candidate is
    /// found, so a query with no feasible point inside the disk terminates
    /// after visiting only the subtrees overlapping it instead of the whole
    /// tree. This is the reachable-disk pruning online assignment uses: a
    /// candidate farther than the disk radius can never meet the deadline
    /// constraint, so the search never needs to look past it.
    pub fn nearest_within_where<F>(
        &self,
        query: &Location,
        max_radius: f64,
        mut feasible: F,
    ) -> Option<(&Location, &T, f64)>
    where
        F: FnMut(&T, &Location) -> bool,
    {
        let root = self.root?;
        if max_radius < 0.0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.search(root, query, max_radius * max_radius, &mut feasible, &mut best);
        best.map(|(idx, d)| (&self.points[idx].0, &self.points[idx].1, d.sqrt()))
    }

    fn search<F>(
        &self,
        node_id: usize,
        query: &Location,
        max_r2: f64,
        feasible: &mut F,
        best: &mut Option<(usize, f64)>,
    ) where
        F: FnMut(&T, &Location) -> bool,
    {
        let node = &self.nodes[node_id];
        let (loc, payload) = &self.points[node.point];
        let d2 = query.distance_sq(loc);
        if d2 <= max_r2 && feasible(payload, loc) && best.is_none_or(|(_, bd)| d2 < bd) {
            *best = Some((node.point, d2));
        }
        let diff = if node.axis == 0 { query.x - loc.x } else { query.y - loc.y };
        let (near, far) =
            if diff <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if let Some(n) = near {
            self.search(n, query, max_r2, feasible, best);
        }
        // Only descend into the far side if the splitting plane is closer
        // than the pruning bound: the current best distance, capped by the
        // query radius (`<=` because the radius is inclusive).
        let bound = best.map_or(max_r2, |(_, bd)| bd.min(max_r2));
        if diff * diff <= bound {
            if let Some(f) = far {
                self.search(f, query, max_r2, feasible, best);
            }
        }
    }

    /// All points within `radius` of `query`, as `(location, payload, distance)`.
    pub fn within_radius(&self, query: &Location, radius: f64) -> Vec<(&Location, &T, f64)> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_search(root, query, radius, &mut out);
        }
        out
    }

    fn range_search<'a>(
        &'a self,
        node_id: usize,
        query: &Location,
        radius: f64,
        out: &mut Vec<(&'a Location, &'a T, f64)>,
    ) {
        let node = &self.nodes[node_id];
        let (loc, payload) = &self.points[node.point];
        let d = query.distance(loc);
        if d <= radius {
            out.push((loc, payload, d));
        }
        let diff = if node.axis == 0 { query.x - loc.x } else { query.y - loc.y };
        let (near, far) =
            if diff <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if let Some(n) = near {
            self.range_search(n, query, radius, out);
        }
        if diff.abs() <= radius {
            if let Some(f) = far {
                self.range_search(f, query, radius, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<(Location, usize)> {
        let mut pts = Vec::new();
        let mut id = 0;
        for x in 0..10 {
            for y in 0..10 {
                pts.push((Location::new(x as f64, y as f64), id));
                id += 1;
            }
        }
        pts
    }

    #[test]
    fn empty_tree_returns_none() {
        let t: KdTree<usize> = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.nearest(&Location::ORIGIN).is_none());
        assert!(t.within_radius(&Location::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn nearest_on_grid_points() {
        let t = KdTree::build(grid_points());
        assert_eq!(t.len(), 100);
        let (loc, _, d) = t.nearest(&Location::new(3.2, 6.9)).unwrap();
        assert_eq!(*loc, Location::new(3.0, 7.0));
        assert!((d - (0.04f64 + 0.01).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = grid_points();
        let t = KdTree::build(pts.clone());
        for q in [
            Location::new(-1.0, -1.0),
            Location::new(4.5, 4.5),
            Location::new(20.0, 3.0),
            Location::new(0.49, 8.51),
        ] {
            let brute = pts.iter().map(|(l, _)| q.distance(l)).fold(f64::INFINITY, f64::min);
            let (_, _, d) = t.nearest(&q).unwrap();
            assert!((d - brute).abs() < 1e-9, "query {q}");
        }
    }

    #[test]
    fn filtered_nearest_skips_infeasible_points() {
        let t = KdTree::build(grid_points());
        // Only points with even payload are feasible.
        let (_, &payload, _) =
            t.nearest_where(&Location::new(0.1, 0.1), |&p, _| p % 2 == 1).unwrap();
        assert_eq!(payload % 2, 1);
        assert!(t.nearest_where(&Location::ORIGIN, |_, _| false).is_none());
    }

    #[test]
    fn radius_bounded_nearest_matches_brute_force() {
        let pts = grid_points();
        let t = KdTree::build(pts.clone());
        for q in [Location::new(4.3, 4.8), Location::new(-0.6, 3.2), Location::new(9.9, 0.1)] {
            for radius in [0.25, 0.5, 1.0, 3.0] {
                let brute = pts
                    .iter()
                    .map(|(l, _)| q.distance(l))
                    .filter(|&d| d <= radius)
                    .fold(f64::INFINITY, f64::min);
                match t.nearest_within_where(&q, radius, |_, _| true) {
                    Some((_, _, d)) => assert!((d - brute).abs() < 1e-9, "query {q} r={radius}"),
                    None => assert_eq!(brute, f64::INFINITY, "query {q} r={radius}"),
                }
            }
        }
        // Negative radius never matches anything.
        assert!(t.nearest_within_where(&Location::ORIGIN, -1.0, |_, _| true).is_none());
    }

    #[test]
    fn radius_bound_prunes_the_search() {
        let t = KdTree::build(grid_points());
        let mut visited_bounded = 0usize;
        let _ = t.nearest_within_where(&Location::new(5.1, 5.1), 1.0, |_, _| {
            visited_bounded += 1;
            false // feasibility never satisfied: the worst case for pruning
        });
        let mut visited_unbounded = 0usize;
        let _ = t.nearest_where(&Location::new(5.1, 5.1), |_, _| {
            visited_unbounded += 1;
            false
        });
        assert_eq!(visited_unbounded, 100, "unbounded infeasible search scans everything");
        assert!(
            visited_bounded < visited_unbounded / 5,
            "radius bound failed to prune: {visited_bounded} vs {visited_unbounded}"
        );
    }

    #[test]
    fn within_radius_collects_all_close_points() {
        let t = KdTree::build(grid_points());
        let found = t.within_radius(&Location::new(5.0, 5.0), 1.0);
        // (5,5), (4,5), (6,5), (5,4), (5,6)
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|&(_, _, d)| d <= 1.0));
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![
            (Location::new(1.0, 1.0), 0),
            (Location::new(1.0, 1.0), 1),
            (Location::new(2.0, 2.0), 2),
        ];
        let t = KdTree::build(pts);
        let (_, _, d) = t.nearest(&Location::new(1.0, 1.0)).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(t.within_radius(&Location::new(1.0, 1.0), 0.1).len(), 2);
    }
}
