//! The paper's running example (Example 1 / Table 1 / Figure 1), step by
//! step: seven taxis, six requests, a 2×2 grid and two 5-minute slots.
//!
//! Shows why flexibility matters: the wait-in-place greedy serves 2 requests,
//! POLAR serves 4 by pre-dispatching idle taxis towards predicted demand, and
//! the offline optimum (free movement, full knowledge) serves all 6.
//!
//! Run with: `cargo run --example toy_example`

use ftoa::core_algorithms::{
    Instance, OfflineGuide, OnlineAlgorithm, Opt, Polar, PolarOp, SimpleGreedy,
};
use ftoa::prediction::SpatioTemporalMatrix;
use ftoa::types::{
    EventStream, GridPartition, Location, ProblemConfig, SlotPartition, Task, TaskId, TimeDelta,
    TimeStamp, TypeKey, Worker, WorkerId,
};

fn main() {
    // 8x8 region split into four areas; two 5-minute slots; speed 1 unit/min;
    // worker patience 30 min; task deadline 2 min (the toy example's numbers).
    let config = ProblemConfig::new(
        GridPartition::square(8.0, 2).unwrap(),
        SlotPartition::over_horizon(TimeDelta::minutes(10.0), 2).unwrap(),
        1.0,
        TimeDelta::minutes(30.0),
        TimeDelta::minutes(2.0),
    );

    let dw = TimeDelta::minutes(30.0);
    let dr = TimeDelta::minutes(2.0);
    let w = |x, y, t| Worker::new(WorkerId(0), Location::new(x, y), TimeStamp::minutes(t), dw);
    let r = |x, y, t| Task::new(TaskId(0), Location::new(x, y), TimeStamp::minutes(t), dr);
    let workers = vec![
        w(1.0, 6.0, 0.0),
        w(1.0, 8.0, 1.0),
        w(3.0, 7.0, 1.0),
        w(5.0, 6.0, 3.0),
        w(6.0, 5.0, 3.0),
        w(6.0, 7.0, 3.0),
        w(7.0, 6.0, 4.0),
    ];
    let tasks = vec![
        r(3.0, 6.0, 0.0),
        r(3.5, 5.5, 2.0),
        r(5.0, 3.0, 5.0),
        r(4.0, 1.0, 6.0),
        r(8.0, 2.0, 7.0),
        r(6.0, 1.0, 8.0),
    ];
    let stream = EventStream::new(workers, tasks);

    // The "prediction" of Figure 1d: the realised per-slot/per-area counts.
    let mut pred_w = SpatioTemporalMatrix::zeros(2, 4);
    let mut pred_r = SpatioTemporalMatrix::zeros(2, 4);
    for worker in stream.workers() {
        pred_w.increment_key(TypeKey::new(
            config.slots.slot_of(worker.start),
            config.grid.cell_of(&worker.location),
        ));
    }
    for task in stream.tasks() {
        pred_r.increment_key(TypeKey::new(
            config.slots.slot_of(task.release),
            config.grid.cell_of(&task.location),
        ));
    }

    println!("Predicted counts per (slot, area):");
    for (key, count) in pred_w.iter_keys().filter(|&(_, v)| v > 0.0) {
        println!("  workers  slot{} area{}: {}", key.slot.index(), key.cell.index(), count);
    }
    for (key, count) in pred_r.iter_keys().filter(|&(_, v)| v > 0.0) {
        println!("  tasks    slot{} area{}: {}", key.slot.index(), key.cell.index(), count);
    }

    let guide = OfflineGuide::build(&config, &pred_w, &pred_r);
    println!("\nOffline guide pseudo-matching |E*| = {}", guide.matching_size());

    let instance = Instance::new(&config, &stream, &pred_w, &pred_r);
    for (name, size) in [
        ("SimpleGreedy (wait in place)", SimpleGreedy.run(&instance).matching_size()),
        ("POLAR (occupy guide nodes)", Polar::default().run(&instance).matching_size()),
        ("POLAR-OP (reuse guide nodes)", PolarOp::default().run(&instance).matching_size()),
        ("OPT (offline, free movement)", Opt::exact().run(&instance).matching_size()),
    ] {
        println!("{name:<32} -> {size} of 6 requests served");
    }
}
