//! Quickstart: build a small synthetic instance, run all five algorithms and
//! print their matching sizes and empirical competitive ratios.
//!
//! Run with: `cargo run --release --example quickstart`

use ftoa::core_algorithms::{
    BatchGreedy, Instance, OfflineGuide, OnlineAlgorithm, Opt, Polar, PolarOp, SimpleGreedy,
};
use ftoa::workload::SyntheticConfig;

fn main() {
    // A 2,000-worker / 2,000-task day on the paper's default synthetic
    // configuration (50x50 grid, 48 slots of 15 minutes, Dr = 2 slots).
    let scenario =
        SyntheticConfig { num_workers: 2_000, num_tasks: 2_000, ..SyntheticConfig::default() }
            .generate(2017);

    println!(
        "Scenario: {} workers, {} tasks, {} grid cells, {} time slots",
        scenario.stream.num_workers(),
        scenario.stream.num_tasks(),
        scenario.config.grid.num_cells(),
        scenario.config.slots.num_slots(),
    );

    let instance = Instance::new(
        &scenario.config,
        &scenario.stream,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    );

    // Step 1 (offline): build the guide from the predicted counts.
    let guide = OfflineGuide::build(
        &scenario.config,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    );
    println!(
        "Offline guide: {} predicted workers, {} predicted tasks, pseudo matching |E*| = {}\n",
        guide.num_worker_nodes(),
        guide.num_task_nodes(),
        guide.matching_size()
    );

    // Step 2 (online): run every algorithm on the arrival stream.
    let opt = Opt::exact().run(&instance);
    let algorithms: Vec<(String, ftoa::core_algorithms::AlgorithmResult)> = vec![
        ("SimpleGreedy".into(), SimpleGreedy.run(&instance)),
        ("GR".into(), BatchGreedy::default().run(&instance)),
        ("POLAR".into(), Polar::default().run_with_guide(&instance, &guide)),
        ("POLAR-OP".into(), PolarOp::default().run_with_guide(&instance, &guide)),
    ];

    println!("{:<14}{:>14}{:>14}{:>12}", "algorithm", "matching", "CR vs OPT", "time (ms)");
    for (name, result) in &algorithms {
        println!(
            "{:<14}{:>14}{:>14.3}{:>12.2}",
            name,
            result.matching_size(),
            result.competitive_ratio(&opt),
            result.runtime.as_secs_f64() * 1000.0
        );
    }
    println!(
        "{:<14}{:>14}{:>14.3}{:>12.2}",
        "OPT",
        opt.matching_size(),
        1.0,
        opt.runtime.as_secs_f64() * 1000.0
    );
}
