//! Weighted greedy on the engine's payoff-argmax kernel.
//!
//! On a weighted stream the nearest pending task is not necessarily the most
//! valuable one. This example defines a small custom [`OnlinePolicy`] that,
//! on every worker arrival, asks the candidate index for the
//! **highest-payoff** reachable pending task via
//! `PoolView::best_payoff_within` — the argmax runs inside the index's SIMD
//! kernel sweep (see `FTOA_KERNEL`) instead of a filter-then-max visitor —
//! and compares the utility it accrues against the payoff-oblivious
//! SimpleGreedy baseline, across all four index backends.
//!
//! Run with: `cargo run --release --example payoff_greedy`

use ftoa::core_algorithms::{
    AssignmentDecision, EngineContext, IndexBackend, OnlinePolicy, SimpleGreedy, SimulationEngine,
};
use ftoa::types::{Task, TimeDelta, Worker};
use ftoa::workload::SyntheticConfig;

/// Greedy over task *payoffs*: each arriving worker grabs the most valuable
/// pending task it can still reach (ties toward the nearest); each arriving
/// task falls back to the most valuable idle worker that can serve it.
#[derive(Default)]
struct PayoffGreedyPolicy {
    /// Largest task patience in the stream, bounding the reachable disk of
    /// worker-arrival queries exactly as SimpleGreedy does.
    max_patience: Option<TimeDelta>,
}

impl PayoffGreedyPolicy {
    fn max_patience(&mut self, ctx: &EngineContext<'_>) -> TimeDelta {
        *self.max_patience.get_or_insert_with(|| ctx.stream.max_task_patience())
    }
}

impl OnlinePolicy for PayoffGreedyPolicy {
    fn name(&self) -> &'static str {
        "PayoffGreedy"
    }

    fn on_worker_arrival(&mut self, ctx: &mut EngineContext<'_>, w: &Worker) {
        let now = ctx.now();
        let velocity = ctx.velocity();
        let radius = velocity * self.max_patience(ctx).as_minutes();
        let found = if now < w.deadline() {
            let origin = w.location;
            // The weighted twist: argmax payoff within the reachable disk,
            // not argmin distance. `feasible` is only consulted for
            // candidates that would improve on the current best.
            ctx.pending_tasks().best_payoff_within(&origin, radius, &mut |task| {
                now + origin.travel_time(&task.location, velocity) <= task.deadline()
            })
        } else {
            None
        };
        if let Some(candidate) = found {
            let task = ctx.claim_task(candidate.handle).expect("candidate came from the pool");
            ctx.commit(AssignmentDecision::new(w.id, task.id));
        } else {
            ctx.admit_worker(w);
        }
    }

    fn on_task_arrival(&mut self, ctx: &mut EngineContext<'_>, r: &Task) {
        let now = ctx.now();
        let velocity = ctx.velocity();
        let radius = r.reach_radius_at(now, velocity);
        let found = ctx.idle_workers().nearest_within(&r.location, radius, &mut |worker| {
            now <= worker.deadline()
                && now + worker.location.travel_time(&r.location, velocity) <= r.deadline()
        });
        if let Some(candidate) = found {
            let worker = ctx.claim_worker(candidate.handle).expect("candidate came from the pool");
            ctx.commit(AssignmentDecision::new(worker.id, r.id));
        } else {
            ctx.admit_task(r);
        }
    }
}

fn main() {
    // A worker-scarce weighted day: few patient workers, many pending tasks
    // with payoffs drawn from [1, 10] — so each arriving worker genuinely
    // chooses among alternatives, and value and proximity disagree often.
    let scenario = SyntheticConfig {
        num_workers: 500,
        num_tasks: 4_000,
        dr_slots: 4.0,
        task_payoff: Some((1.0, 10.0)),
        ..SyntheticConfig::default()
    }
    .generate(2017);
    let instance = ftoa::core_algorithms::Instance::new(
        &scenario.config,
        &scenario.stream,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    );

    println!(
        "{:<14}{:<14}{:>10}{:>14}{:>12}",
        "policy", "backend", "matching", "total payoff", "time (ms)"
    );
    for backend in IndexBackend::ALL {
        let engine = SimulationEngine::new(backend);
        let mut weighted = PayoffGreedyPolicy::default();
        let mut nearest = SimpleGreedy.policy();
        for result in [engine.run(&instance, &mut weighted), engine.run(&instance, &mut nearest)] {
            println!(
                "{:<14}{:<14}{:>10}{:>14.1}{:>12.2}",
                result.algorithm,
                result.stats.backend,
                result.matching_size(),
                result.total_payoff,
                result.runtime.as_secs_f64() * 1000.0
            );
        }
    }
    println!("\nSame matching size, substantially higher utility — and identical totals on");
    println!("every backend: the argmax runs inside the shared index kernels (set");
    println!("FTOA_KERNEL=scalar|avx2|neon to pin one implementation).");
}
