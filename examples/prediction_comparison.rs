//! Offline-prediction comparison: reproduce a miniature Table 5 and show how
//! prediction quality propagates into online matching size.
//!
//! For each predictor we (1) measure ER / RMLSE on a held-out day of the
//! Hangzhou-like workload, and (2) feed its forecast into the offline guide
//! and run POLAR-OP, reporting the resulting matching size. Better forecasts
//! should translate into more served requests.
//!
//! Run with: `cargo run --release --example prediction_comparison`

use ftoa::core_algorithms::{Instance, OfflineGuide, OnlineAlgorithm, Opt, PolarOp};
use ftoa::prediction::{all_predictors, error_rate, rmlse, Quantity};
use ftoa::workload::city::CityWorkload;
use ftoa::workload::CityConfig;

fn main() {
    let history_days = 28;
    let city = CityWorkload::new(CityConfig::hangzhou().scaled_down(25));
    let history = city.generate_history(history_days);
    let (meta, truth_workers, truth_tasks) = city.test_day_truth(history_days);

    println!(
        "Hangzhou-like workload at 1/25 scale: {} days of history, test day has {:.0} tasks / {:.0} workers\n",
        history_days,
        truth_tasks.total(),
        truth_workers.total()
    );
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>16}",
        "method", "task RMLSE", "task ER", "worker ER", "|E*| guide", "POLAR-OP size"
    );

    let opt_size = {
        // Reference: the offline optimum is prediction-independent.
        let (scenario, _) =
            city.generate_scenario(&ftoa::prediction::HistoricalAverage, history_days);
        let instance = Instance::new(
            &scenario.config,
            &scenario.stream,
            &scenario.predicted_workers,
            &scenario.predicted_tasks,
        );
        Opt::exact().run(&instance).matching_size()
    };

    for predictor in all_predictors() {
        let pred_tasks = predictor.predict(&history, Quantity::Tasks, &meta);
        let pred_workers = predictor.predict(&history, Quantity::Workers, &meta);
        let (scenario, _) = city.generate_scenario(predictor.as_ref(), history_days);
        let guide = OfflineGuide::build(
            &scenario.config,
            &scenario.predicted_workers,
            &scenario.predicted_tasks,
        );
        let instance = Instance::new(
            &scenario.config,
            &scenario.stream,
            &scenario.predicted_workers,
            &scenario.predicted_tasks,
        );
        let polar_op = PolarOp::default().run_with_guide(&instance, &guide);
        println!(
            "{:<10}{:>12.3}{:>12.3}{:>12.3}{:>12}{:>16}",
            predictor.name(),
            rmlse(&truth_tasks, &pred_tasks),
            error_rate(&truth_tasks, &pred_tasks),
            error_rate(&truth_workers, &pred_workers),
            guide.matching_size(),
            polar_op.matching_size(),
        );
    }
    println!("\nOffline optimum on the same day: {opt_size} served requests.");
}
