//! Taxi-dispatch scenario: the full two-step pipeline on a (scaled-down)
//! Beijing-like day — exactly the workload class that motivates the paper.
//!
//! 1. Generate four weeks of historical per-slot/per-cell counts.
//! 2. Train the HP-MSI predictor (the paper's pick) and compare it with the
//!    simple Historical Average on the held-out day.
//! 3. Build the offline guide from the forecast and dispatch taxis online
//!    with POLAR-OP; compare against SimpleGreedy and the offline optimum.
//!
//! Run with: `cargo run --release --example taxi_dispatch`

use ftoa::core_algorithms::{Instance, OfflineGuide, OnlineAlgorithm, Opt, PolarOp, SimpleGreedy};
use ftoa::prediction::{error_rate, HistoricalAverage, HpMsi, Predictor, Quantity};
use ftoa::workload::city::CityWorkload;
use ftoa::workload::CityConfig;

fn main() {
    // 1/20 of the Beijing daily volume keeps this example under a minute.
    let city = CityWorkload::new(CityConfig::beijing().scaled_down(20));
    println!(
        "City: {} (~{} taxis and ~{} requests per day, {} grid cells, {} slots)",
        city.config().name,
        city.config().num_workers,
        city.config().num_tasks,
        city.config().grid_nx * city.config().grid_ny,
        city.config().num_slots,
    );

    // Offline step: history + prediction.
    let history_days = 28;
    let (scenario, history) = city.generate_scenario(&HpMsi::default(), history_days);
    let (meta, truth_workers, truth_tasks) = city.test_day_truth(history_days);

    let ha_tasks = HistoricalAverage.predict(&history, Quantity::Tasks, &meta);
    println!("\nPrediction error on the held-out day (task counts, lower is better):");
    println!("  HP-MSI error rate: {:.3}", error_rate(&truth_tasks, &scenario.predicted_tasks));
    println!("  HA     error rate: {:.3}", error_rate(&truth_tasks, &ha_tasks));
    println!(
        "  (truth: {:.0} requests, {:.0} taxis on the test day)",
        truth_tasks.total(),
        truth_workers.total()
    );

    // Online step: dispatch.
    let instance = Instance::new(
        &scenario.config,
        &scenario.stream,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    );
    let guide = OfflineGuide::build(
        &scenario.config,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    );
    let polar_op = PolarOp::default().run_with_guide(&instance, &guide);
    let greedy = SimpleGreedy.run(&instance);
    let opt = Opt::exact().run(&instance);

    println!("\nOnline dispatch on the test day:");
    println!(
        "  SimpleGreedy : {:5} served   (CR {:.3})",
        greedy.matching_size(),
        greedy.competitive_ratio(&opt)
    );
    println!(
        "  POLAR-OP     : {:5} served   (CR {:.3})",
        polar_op.matching_size(),
        polar_op.competitive_ratio(&opt)
    );
    println!("  OPT          : {:5} served", opt.matching_size());
    let gain = polar_op.matching_size() as f64 / greedy.matching_size().max(1) as f64;
    println!("\nGuiding idle taxis with the predictive guide served {:.1}% more requests than waiting in place.", (gain - 1.0) * 100.0);
}
