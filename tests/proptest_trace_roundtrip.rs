//! Trace round-trip property tests.
//!
//! The trace subsystem promises that capturing a stream with `TraceWriter`
//! and re-reading it with `TraceReader` is lossless: the reconstructed
//! configuration and stream are *identical* (not merely equivalent), and —
//! because engine runs are deterministic functions of `(config, stream)` —
//! replaying the reread stream produces identical engine metrics. These
//! properties pin that down on random synthetic scenarios, including the
//! trace-shaped presets.

use ftoa::core_algorithms::{IndexBackend, ReplayDriver, SimpleGreedy};
use ftoa::workload::{presets, Scenario, SyntheticConfig, TraceReader, TraceWriter};
use proptest::prelude::*;

/// A small random synthetic scenario, biased to odd sizes and regions so the
/// float fields take "ugly" values that stress the text round trip. When
/// `weighted` is set, payoffs and capacities are drawn from deliberately
/// awkward ranges (a third-based payoff span has no short decimal form), so
/// the v2 fields exercise the shortest-round-trip float path too.
fn scenario_strategy(weighted: bool) -> impl Strategy<Value = Scenario> {
    (1usize..80, 1usize..80, 2usize..9, 2usize..7, 0u64..1_000).prop_map(
        move |(num_workers, num_tasks, grid_n, num_slots, seed)| {
            SyntheticConfig {
                num_workers,
                num_tasks,
                grid_n,
                num_slots,
                region_side: 17.0 / 3.0 * grid_n as f64,
                slot_minutes: 11.0 / 7.0 * 6.0,
                task_payoff: weighted.then_some((1.0 / 3.0, 19.0 / 7.0)),
                worker_capacity: weighted.then_some((1, 5)),
                ..SyntheticConfig::default()
            }
            .generate(seed)
        },
    )
}

fn round_trip(scenario: &Scenario) -> ftoa::workload::Trace {
    let text = TraceWriter::to_string(&scenario.config, &scenario.stream);
    TraceReader::read_str(&text).expect("a written trace must parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn write_read_reproduces_the_stream_exactly(scenario in scenario_strategy(false)) {
        let trace = round_trip(&scenario);
        prop_assert_eq!(&trace.config, &scenario.config);
        prop_assert_eq!(&trace.stream, &scenario.stream);
    }

    #[test]
    fn rewriting_a_reread_trace_is_byte_identical(scenario in scenario_strategy(false)) {
        let text = TraceWriter::to_string(&scenario.config, &scenario.stream);
        let trace = TraceReader::read_str(&text).expect("parses");
        prop_assert_eq!(TraceWriter::to_string(&trace.config, &trace.stream), text);
    }

    #[test]
    fn weighted_write_read_reproduces_payoffs_and_capacities_exactly(
        scenario in scenario_strategy(true)
    ) {
        let text = TraceWriter::to_string(&scenario.config, &scenario.stream);
        let trace = TraceReader::read_str(&text).expect("a written v2 trace must parse");
        prop_assert_eq!(trace.version, ftoa::workload::TraceVersion::V2);
        // Stream equality covers payoff and capacity bit-for-bit: `Task` and
        // `Worker` derive `PartialEq` over every field.
        prop_assert_eq!(&trace.stream, &scenario.stream);
        prop_assert_eq!(TraceWriter::to_string(&trace.config, &trace.stream), text);
    }

    #[test]
    fn replaying_a_reread_trace_gives_identical_engine_metrics(
        scenario in scenario_strategy(false)
    ) {
        let trace = round_trip(&scenario);
        for backend in [IndexBackend::LinearScan, IndexBackend::Grid] {
            let original = ReplayDriver::builder(&scenario.config, &scenario.stream)
                .backend(backend)
                .build()
                .run(&scenario.config, &scenario.stream, &mut SimpleGreedy.policy());
            let replayed = ReplayDriver::builder(&trace.config, &trace.stream)
                .backend(backend)
                .build()
                .run(&trace.config, &trace.stream, &mut SimpleGreedy.policy());
            prop_assert_eq!(original.matching_size(), replayed.matching_size());
            prop_assert_eq!(original.assignments.pairs(), replayed.assignments.pairs());
            prop_assert_eq!(original.stats, replayed.stats);
        }
    }
}

/// The presets go through the same writer/reader; spot-check them outside the
/// random loop (they are deterministic).
#[test]
fn presets_round_trip_exactly() {
    for scenario in [
        presets::hotspot_skewed(0.005, 3),
        presets::rush_hour(0.005, 5),
        presets::imbalance(0.5, 0.005, 9),
        presets::ci_fixture(),
    ] {
        let trace = round_trip(&scenario);
        assert_eq!(trace.stream, scenario.stream);
        // The replay prediction is the realised counts by construction.
        let replayed = trace.into_scenario();
        let (w, t) = scenario.actual_counts();
        assert_eq!(replayed.predicted_workers, w);
        assert_eq!(replayed.predicted_tasks, t);
    }
}
