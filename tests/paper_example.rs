//! End-to-end reproduction of the paper's running example (Example 1,
//! Table 1, Figure 1) through the public facade crate.
//!
//! The qualitative result the example is built to demonstrate:
//! wait-in-place greedy serves 2 requests, POLAR serves 4 by pre-dispatching
//! workers, POLAR-OP serves at least as many, and the offline optimum serves
//! all 6.

use ftoa::core_algorithms::{
    BatchGreedy, Instance, OfflineGuide, OnlineAlgorithm, Opt, Polar, PolarOp, SimpleGreedy,
};
use ftoa::prediction::SpatioTemporalMatrix;
use ftoa::types::{
    EventStream, GridPartition, Location, ProblemConfig, SlotPartition, Task, TaskId, TimeDelta,
    TimeStamp, TypeKey, Worker, WorkerId,
};

fn example_config() -> ProblemConfig {
    ProblemConfig::new(
        GridPartition::square(8.0, 2).unwrap(),
        SlotPartition::over_horizon(TimeDelta::minutes(10.0), 2).unwrap(),
        1.0,
        TimeDelta::minutes(30.0),
        TimeDelta::minutes(2.0),
    )
}

fn example_stream() -> EventStream {
    let dw = TimeDelta::minutes(30.0);
    let dr = TimeDelta::minutes(2.0);
    let w = |x, y, t| Worker::new(WorkerId(0), Location::new(x, y), TimeStamp::minutes(t), dw);
    let r = |x, y, t| Task::new(TaskId(0), Location::new(x, y), TimeStamp::minutes(t), dr);
    EventStream::new(
        vec![
            w(1.0, 6.0, 0.0),
            w(1.0, 8.0, 1.0),
            w(3.0, 7.0, 1.0),
            w(5.0, 6.0, 3.0),
            w(6.0, 5.0, 3.0),
            w(6.0, 7.0, 3.0),
            w(7.0, 6.0, 4.0),
        ],
        vec![
            r(3.0, 6.0, 0.0),
            r(3.5, 5.5, 2.0),
            r(5.0, 3.0, 5.0),
            r(4.0, 1.0, 6.0),
            r(8.0, 2.0, 7.0),
            r(6.0, 1.0, 8.0),
        ],
    )
}

fn counts(
    config: &ProblemConfig,
    stream: &EventStream,
) -> (SpatioTemporalMatrix, SpatioTemporalMatrix) {
    let mut workers =
        SpatioTemporalMatrix::zeros(config.slots.num_slots(), config.grid.num_cells());
    let mut tasks = workers.clone();
    for w in stream.workers() {
        workers.increment_key(TypeKey::new(
            config.slots.slot_of(w.start),
            config.grid.cell_of(&w.location),
        ));
    }
    for r in stream.tasks() {
        tasks.increment_key(TypeKey::new(
            config.slots.slot_of(r.release),
            config.grid.cell_of(&r.location),
        ));
    }
    (workers, tasks)
}

#[test]
fn running_example_reproduces_the_papers_ordering() {
    let config = example_config();
    let stream = example_stream();
    let (pw, pt) = counts(&config, &stream);
    let instance = Instance::new(&config, &stream, &pw, &pt);

    let greedy = SimpleGreedy.run(&instance);
    let gr = BatchGreedy::default().run(&instance);
    let polar = Polar::default().run(&instance);
    let polar_op = PolarOp::default().run(&instance);
    let opt = Opt::exact().run(&instance);

    assert_eq!(greedy.matching_size(), 2, "Example 2: wait-in-place greedy serves 2");
    assert_eq!(polar.matching_size(), 4, "Example 5: POLAR serves 4");
    assert!(polar_op.matching_size() >= polar.matching_size(), "Example 6: POLAR-OP >= POLAR");
    assert_eq!(opt.matching_size(), 6, "Example 1: the offline optimum serves all 6");
    assert!(gr.matching_size() <= opt.matching_size());

    // Every produced matching is feasible under the flexible (FTOA) model.
    for result in [&greedy, &gr, &polar, &polar_op, &opt] {
        result
            .assignments
            .validate_flexible(stream.workers(), stream.tasks(), config.velocity)
            .unwrap_or_else(|e| panic!("{}: invalid matching: {e}", result.algorithm));
    }
    // The wait-in-place algorithms additionally satisfy the static model.
    greedy.assignments.validate_static(stream.workers(), stream.tasks(), config.velocity).unwrap();
    gr.assignments.validate_static(stream.workers(), stream.tasks(), config.velocity).unwrap();
}

#[test]
fn offline_guide_matches_figure_2() {
    let config = example_config();
    let stream = example_stream();
    let (pw, pt) = counts(&config, &stream);
    let guide = OfflineGuide::build(&config, &pw, &pt);
    // Seven predicted workers, six predicted tasks, and a pseudo matching
    // that pairs every predicted task (all six are reachable by some worker
    // type under the example's deadlines).
    assert_eq!(guide.num_worker_nodes(), 7);
    assert_eq!(guide.num_task_nodes(), 6);
    assert_eq!(guide.matching_size(), 6);
}

#[test]
fn empirical_competitive_ratios_exceed_the_theory_bounds_on_the_example() {
    let config = example_config();
    let stream = example_stream();
    let (pw, pt) = counts(&config, &stream);
    let instance = Instance::new(&config, &stream, &pw, &pt);
    let opt = Opt::exact().run(&instance);
    let polar = Polar::default().run(&instance);
    let polar_op = PolarOp::default().run(&instance);
    // The guarantees are 0.40 (POLAR) and 0.47 (POLAR-OP) in expectation; a
    // single favourable instance should comfortably clear them.
    assert!(polar.competitive_ratio(&opt) >= 0.40);
    assert!(polar_op.competitive_ratio(&opt) >= 0.47);
}
