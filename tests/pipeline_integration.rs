//! Cross-crate integration tests: workload generation → prediction → guide →
//! online algorithms → reports, through the public facade.

use ftoa::core_algorithms::algorithms::OptMode;
use ftoa::experiments::runner::{run_suite, SuiteOptions};
use ftoa::experiments::table5::Table5;
use ftoa::prediction::{error_rate, HistoricalAverage, HpMsi, Predictor, Quantity};
use ftoa::workload::city::CityWorkload;
use ftoa::workload::{CityConfig, SyntheticConfig};

fn small_synthetic() -> ftoa::workload::Scenario {
    SyntheticConfig {
        num_workers: 600,
        num_tasks: 600,
        grid_n: 20,
        num_slots: 12,
        ..Default::default()
    }
    .generate(99)
}

#[test]
fn synthetic_suite_preserves_the_papers_ordering() {
    // Use the realised counts as the prediction (the i.i.d. model's ideal
    // case): at this small scale the analytic expectation is too sparse to
    // exercise the ordering reliably, whereas the algorithms themselves are
    // what this test pins down.
    let scenario = small_synthetic().with_perfect_prediction();
    let results = run_suite(&scenario, &SuiteOptions::default());
    let size = |name: &str| {
        results.iter().find(|r| r.algorithm == name).map(|r| r.matching_size()).unwrap()
    };
    let opt = size("OPT");
    // Headline result of the paper: POLAR-OP >= POLAR and both prediction-
    // guided algorithms beat the wait-in-place baselines; nobody beats OPT.
    assert!(size("POLAR-OP") >= size("POLAR"));
    assert!(size("POLAR-OP") > size("SimpleGreedy"));
    assert!(size("POLAR-OP") > size("GR"));
    for name in ["SimpleGreedy", "GR", "POLAR", "POLAR-OP"] {
        assert!(size(name) <= opt, "{name} exceeded OPT");
    }
    // Empirical competitive ratio of POLAR-OP should clear the 0.47 bound on
    // this well-predicted instance.
    assert!(size("POLAR-OP") as f64 / opt as f64 >= 0.47);
}

#[test]
fn city_pipeline_with_learned_prediction() {
    let city = CityWorkload::new(CityConfig::beijing().scaled_down(100));
    let (scenario, history) = city.generate_scenario(&HpMsi::default(), 14);
    assert_eq!(history.len(), 14);
    let results = run_suite(&scenario, &SuiteOptions::default());
    let size = |name: &str| {
        results.iter().find(|r| r.algorithm == name).map(|r| r.matching_size()).unwrap()
    };
    assert!(size("OPT") > 0, "the city day must admit some assignments");
    assert!(size("POLAR-OP") <= size("OPT"));
    for r in &results {
        r.assignments
            .validate_flexible(
                scenario.stream.workers(),
                scenario.stream.tasks(),
                scenario.config.velocity,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", r.algorithm));
    }
}

#[test]
fn aggregated_opt_tracks_exact_opt_on_moderate_instances() {
    let scenario = small_synthetic();
    let exact = run_suite(&scenario, &SuiteOptions::default());
    let aggregated = run_suite(
        &scenario,
        &SuiteOptions { opt_mode: OptMode::TypeAggregated, ..SuiteOptions::default() },
    );
    let e = exact.last().unwrap().matching_size() as f64;
    let a = aggregated.last().unwrap().matching_size() as f64;
    assert!(a >= 0.55 * e && a <= 1.1 * e, "exact {e} vs aggregated {a}");
}

#[test]
fn better_predictions_do_not_hurt_polar_op() {
    // Perfect prediction vs. heavily noised prediction on the same stream.
    let base = small_synthetic().with_perfect_prediction();
    let noisy = base.clone().with_prediction_noise(2.0, 7);
    let opts = SuiteOptions { include_opt: false, ..SuiteOptions::default() };
    let perfect_results = run_suite(&base, &opts);
    let noisy_results = run_suite(&noisy, &opts);
    let perfect = perfect_results.iter().find(|r| r.algorithm == "POLAR-OP").unwrap();
    let noisy_r = noisy_results.iter().find(|r| r.algorithm == "POLAR-OP").unwrap();
    // Noise may reduce the matching; it should not (systematically) improve it.
    assert!(noisy_r.matching_size() <= perfect.matching_size() + 5);
}

#[test]
fn table5_identifies_a_sensible_best_predictor() {
    let mut beijing = CityConfig::beijing();
    beijing.grid_nx = 8;
    beijing.grid_ny = 10;
    let table = Table5::evaluate(&[beijing], 50, 21);
    assert_eq!(table.scores.len(), 7);
    let best = table.best_predictor().expect("a best predictor exists");
    // On the weekly-structured city workload the informed predictors must
    // beat pure time-series extrapolation.
    assert_ne!(best, "ARIMA");
    // HP-MSI (the paper's choice) should be no worse than the naive HA in ER.
    let hp = table.score("HP-MSI", "Beijing").unwrap();
    let ha = table.score("HA", "Beijing").unwrap();
    assert!(hp.task_er <= ha.task_er * 1.35, "HP-MSI {:.3} vs HA {:.3}", hp.task_er, ha.task_er);
}

#[test]
fn prediction_error_propagates_to_matching_quality() {
    // HP-MSI (the paper's chosen predictor) should beat the naive historical
    // average on a city day whose per-cell counts are not degenerate.
    let mut cfg = CityConfig::hangzhou().scaled_down(50);
    cfg.grid_nx = 8;
    cfg.grid_ny = 10;
    let city = CityWorkload::new(cfg);
    let days = 14;
    let (meta, _, truth_tasks) = city.test_day_truth(days);
    let history = city.generate_history(days);

    let hp = HpMsi::default();
    let ha = HistoricalAverage;
    let er_hp = error_rate(&truth_tasks, &hp.predict(&history, Quantity::Tasks, &meta));
    let er_ha = error_rate(&truth_tasks, &ha.predict(&history, Quantity::Tasks, &meta));
    assert!(er_hp.is_finite() && er_ha.is_finite());
    assert!(er_hp < 1.0, "HP-MSI error rate {er_hp}");
    assert!(er_hp <= er_ha * 1.1, "HP-MSI {er_hp} should not be worse than HA {er_ha}");
}
