//! Property tests for the generational `ItemArena` backing the engine pools.
//!
//! A random insert/remove/reinsert workload is replayed against a plain
//! `BTreeMap` model. The properties pin the two guarantees every candidate
//! backend builds on:
//!
//! * **handles are never stale**: a handle returned by an insert resolves to
//!   exactly that insertion until it is removed, and never again afterwards —
//!   even when the slot is recycled by a later insert;
//! * **ordered iteration is dense-index order**: `for_each_ordered` visits
//!   the live items in ascending `WorkerId` order regardless of the slot
//!   permutation the free-list produced.

use ftoa::core_algorithms::ItemArena;
use ftoa::types::{Location, PoolHandle, TimeDelta, TimeStamp, Worker, WorkerId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One step of the random workload, interpreted against the current state:
/// `Insert` admits the first non-live index derived from `index_seed`;
/// `Remove` drops the live object whose position (in dense order) is
/// `pick % live`.
#[derive(Debug, Clone)]
enum Op {
    Insert { index_seed: usize, x: f64, y: f64 },
    Remove { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // ~60% inserts, ~40% removes (the shimmed proptest has no `prop_oneof`,
    // so the choice is folded into one mapped tuple).
    (0u32..5, 0usize..24, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(kind, seed, x, y)| {
        if kind < 3 {
            Op::Insert { index_seed: seed, x, y }
        } else {
            Op::Remove { pick: seed }
        }
    })
}

fn worker(index: usize, x: f64, y: f64) -> Worker {
    Worker::new(WorkerId(index), Location::new(x, y), TimeStamp::ZERO, TimeDelta::minutes(30.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_agrees_with_a_map_model_under_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut arena: ItemArena<Worker> = ItemArena::new();
        // Dense index -> (current handle, item) for the live set.
        let mut model: BTreeMap<usize, (PoolHandle, Worker)> = BTreeMap::new();
        // Every handle ever retired, with the slot it occupied.
        let mut retired: Vec<PoolHandle> = Vec::new();

        for op in ops {
            match op {
                Op::Insert { index_seed, x, y } => {
                    // Find a not-currently-live index so the insert is legal
                    // (skip the step when every index is live).
                    let Some(index) = (index_seed..index_seed + 24)
                        .map(|i| i % 24)
                        .find(|i| !model.contains_key(i))
                    else {
                        continue;
                    };
                    let item = worker(index, x, y);
                    let handle = arena.insert(item);
                    prop_assert!(arena.is_live(handle));
                    prop_assert_eq!(arena.handle_of(index), Some(handle));
                    model.insert(index, (handle, item));
                }
                Op::Remove { pick } => {
                    if model.is_empty() {
                        continue;
                    }
                    let index = *model.keys().nth(pick % model.len()).expect("pick is in range");
                    let (handle, item) = model.remove(&index).expect("picked a live index");
                    let removed = arena.remove(handle).expect("live handle removes");
                    prop_assert_eq!(removed.id, item.id);
                    prop_assert!(!arena.is_live(handle));
                    prop_assert!(arena.remove(handle).is_none(), "double remove is a no-op");
                    retired.push(handle);
                }
            }

            // The live set matches the model exactly.
            prop_assert_eq!(arena.len(), model.len());
            for (&index, &(handle, item)) in model.iter() {
                prop_assert_eq!(arena.handle_of(index), Some(handle));
                let got = arena.get(handle).expect("live handle resolves");
                prop_assert_eq!(got.id, item.id);
                prop_assert_eq!(got.location, item.location);
            }

            // No retired handle ever resolves again, even after its slot was
            // recycled by a later insertion.
            for &stale in retired.iter() {
                prop_assert!(!arena.is_live(stale));
                prop_assert!(arena.get(stale).is_none());
                prop_assert!(arena.deadline_of(stale).is_none());
            }

            // Ordered iteration = ascending dense-index order, independent of
            // the slot permutation the free-list produced.
            let mut seen = Vec::new();
            arena.for_each_ordered(&mut |w: &Worker| seen.push(w.id.index()));
            let expected: Vec<usize> = model.keys().copied().collect();
            prop_assert_eq!(seen, expected);

            // Vacant slots carry NaN coordinates (what keeps the distance
            // kernels from ever surfacing them).
            let live_slots: Vec<usize> =
                model.values().map(|&(h, _)| h.slot() as usize).collect();
            for slot in 0..arena.slot_count() {
                if !live_slots.contains(&slot) {
                    prop_assert!(arena.xs()[slot].is_nan());
                    prop_assert!(arena.ys()[slot].is_nan());
                }
            }
        }
    }
}
