//! Property-based invariants across the whole pipeline: for arbitrary small
//! instances, every algorithm must produce a valid matching bounded by OPT,
//! and the guide construction must respect the predicted counts.

use ftoa::core_algorithms::{
    BatchGreedy, Instance, OfflineGuide, OnlineAlgorithm, Opt, Polar, PolarOp, SimpleGreedy,
};
use ftoa::prediction::SpatioTemporalMatrix;
use ftoa::types::{
    EventStream, GridPartition, Location, ProblemConfig, SlotPartition, Task, TaskId, TimeDelta,
    TimeStamp, TypeKey, Worker, WorkerId,
};
use proptest::prelude::*;

const SIDE: f64 = 20.0;
const HORIZON: f64 = 60.0;

fn config() -> ProblemConfig {
    ProblemConfig::new(
        GridPartition::square(SIDE, 4).unwrap(),
        SlotPartition::over_horizon(TimeDelta::minutes(HORIZON), 6).unwrap(),
        1.0,
        TimeDelta::minutes(20.0),
        TimeDelta::minutes(8.0),
    )
}

/// Strategy: a list of (x, y, t) triples inside the region/horizon.
fn objects(max: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.0..SIDE, 0.0..SIDE, 0.0..HORIZON - 1.0), 0..max)
}

fn build_instance(
    config: &ProblemConfig,
    workers_raw: &[(f64, f64, f64)],
    tasks_raw: &[(f64, f64, f64)],
) -> (EventStream, SpatioTemporalMatrix, SpatioTemporalMatrix) {
    let workers: Vec<Worker> = workers_raw
        .iter()
        .map(|&(x, y, t)| {
            Worker::new(
                WorkerId(0),
                Location::new(x, y),
                TimeStamp::minutes(t),
                config.default_worker_wait,
            )
        })
        .collect();
    let tasks: Vec<Task> = tasks_raw
        .iter()
        .map(|&(x, y, t)| {
            Task::new(
                TaskId(0),
                Location::new(x, y),
                TimeStamp::minutes(t),
                config.default_task_patience,
            )
        })
        .collect();
    let stream = EventStream::new(workers, tasks);
    let mut pw = SpatioTemporalMatrix::zeros(config.slots.num_slots(), config.grid.num_cells());
    let mut pt = pw.clone();
    for w in stream.workers() {
        pw.increment_key(TypeKey::new(
            config.slots.slot_of(w.start),
            config.grid.cell_of(&w.location),
        ));
    }
    for r in stream.tasks() {
        pt.increment_key(TypeKey::new(
            config.slots.slot_of(r.release),
            config.grid.cell_of(&r.location),
        ));
    }
    (stream, pw, pt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm returns a feasible matching whose size never exceeds
    /// OPT's, and OPT never exceeds min(|W|, |R|).
    #[test]
    fn all_algorithms_produce_valid_matchings_bounded_by_opt(
        workers_raw in objects(25),
        tasks_raw in objects(25),
    ) {
        let config = config();
        let (stream, pw, pt) = build_instance(&config, &workers_raw, &tasks_raw);
        let instance = Instance::new(&config, &stream, &pw, &pt);
        let opt = Opt::exact().run(&instance);
        prop_assert!(opt.matching_size() <= stream.num_workers().min(stream.num_tasks()));
        let algorithms: Vec<Box<dyn OnlineAlgorithm>> = vec![
            Box::new(SimpleGreedy),
            Box::new(BatchGreedy::default()),
            Box::new(Polar::default()),
            Box::new(PolarOp::default()),
        ];
        for alg in &algorithms {
            let result = alg.run(&instance);
            prop_assert!(
                result.matching_size() <= opt.matching_size(),
                "{} produced {} > OPT {}",
                alg.name(), result.matching_size(), opt.matching_size()
            );
            prop_assert!(result
                .assignments
                .validate_flexible(stream.workers(), stream.tasks(), config.velocity)
                .is_ok());
        }
    }

    /// The guide never instantiates more nodes than the predicted totals and
    /// its matching is bounded by both sides.
    #[test]
    fn guide_respects_predicted_counts(
        workers_raw in objects(30),
        tasks_raw in objects(30),
    ) {
        let config = config();
        let (_stream, pw, pt) = build_instance(&config, &workers_raw, &tasks_raw);
        let guide = OfflineGuide::build(&config, &pw, &pt);
        prop_assert_eq!(guide.num_worker_nodes(), pw.total().round() as usize);
        prop_assert_eq!(guide.num_task_nodes(), pt.total().round() as usize);
        prop_assert!(guide.matching_size() <= guide.num_worker_nodes().min(guide.num_task_nodes()));
        // Partner links are symmetric.
        for (w_idx, node) in guide.worker_nodes().iter().enumerate() {
            if let Some(r_idx) = node.partner {
                prop_assert_eq!(guide.task_nodes()[r_idx].partner, Some(w_idx));
            }
        }
    }

    /// POLAR-OP is never worse than POLAR when both use the same guide — the
    /// node-reuse optimisation can only help.
    #[test]
    fn polar_op_dominates_polar(
        workers_raw in objects(25),
        tasks_raw in objects(25),
    ) {
        let config = config();
        let (stream, pw, pt) = build_instance(&config, &workers_raw, &tasks_raw);
        let instance = Instance::new(&config, &stream, &pw, &pt);
        let guide = OfflineGuide::build(&config, &pw, &pt);
        let polar = Polar::default().run_with_guide(&instance, &guide);
        let polar_op = PolarOp::default().run_with_guide(&instance, &guide);
        prop_assert!(polar_op.matching_size() >= polar.matching_size());
    }

    /// Perfect predictions make POLAR-OP meet the 0.47 bound empirically on
    /// instances that have at least a few feasible pairs.
    #[test]
    fn polar_op_meets_the_047_bound_with_perfect_prediction(
        workers_raw in objects(40),
        tasks_raw in objects(40),
    ) {
        let config = config();
        let (stream, pw, pt) = build_instance(&config, &workers_raw, &tasks_raw);
        let instance = Instance::new(&config, &stream, &pw, &pt);
        let opt = Opt::exact().run(&instance);
        prop_assume!(opt.matching_size() >= 5);
        let polar_op = PolarOp::default().run(&instance);
        prop_assert!(
            polar_op.competitive_ratio(&opt) >= 0.3,
            "POLAR-OP ratio {} too low (opt {})",
            polar_op.competitive_ratio(&opt),
            opt.matching_size()
        );
    }
}
