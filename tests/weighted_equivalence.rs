//! Unit-value equivalence: the weighted model is a strict generalisation.
//!
//! With every `payoff == 1.0` and every `capacity == 1` (exactly what a v1
//! trace deserialises to) the weighted engine must behave *identically* to
//! the historical unit model: each legacy policy produces its pinned
//! matching size and a `total_payoff` equal to that size. The weighted
//! fixture then pins the other direction — non-unit payoffs and capacities
//! flow through the same policies and change the accounting (and, for
//! capacity-aware policies, the matchings themselves).

use ftoa::experiments::{Algo, ReplayConfig};
use ftoa::workload::{TraceReader, TraceVersion};

/// The five legacy policies on the committed v1 fixture: sizes are pinned to
/// the same values as `traces/golden_metrics.json`, and on unit values the
/// weighted accounting must collapse to the cardinality.
#[test]
fn legacy_policies_on_unit_values_reduce_to_the_historical_model() {
    let trace =
        TraceReader::read_file("traces/fixture_small.trace").expect("committed fixture parses");
    assert_eq!(trace.version, TraceVersion::V1);
    let scenario = trace.into_scenario();
    assert!(scenario.stream.workers().iter().all(|w| w.capacity == 1));
    assert!(scenario.stream.tasks().iter().all(|t| t.payoff == 1.0));

    let results = ReplayConfig::new(&scenario).algos(&Algo::ALL).threads(1).run();
    let expected =
        [("SimpleGreedy", 458), ("GR", 473), ("POLAR", 412), ("POLAR-OP", 416), ("OPT", 480)];
    assert_eq!(results.len(), expected.len());
    for (result, (name, size)) in results.iter().zip(expected) {
        assert_eq!(result.algorithm, name);
        assert_eq!(result.matching_size(), size, "{name} matching size drifted");
        assert_eq!(
            result.total_payoff, size as f64,
            "{name}: on unit payoffs total_payoff must equal the matching size"
        );
    }
}

/// The weighted fixture shares the unit fixture's arrivals, so any size
/// difference against the test above is attributable purely to capacities.
/// The single-assignment policies keep their unit matchings (same greedy
/// choices, weighted accounting); capacity-aware rounds serve every task.
#[test]
fn weighted_fixture_pins_the_capacity_aware_suite() {
    let trace =
        TraceReader::read_file("traces/fixture_weighted.trace").expect("committed fixture parses");
    assert_eq!(trace.version, TraceVersion::V2);
    let scenario = trace.into_scenario();
    assert!(scenario.stream.workers().iter().any(|w| w.capacity > 1));
    assert!(scenario.stream.tasks().iter().any(|t| t.payoff != 1.0));

    let mut algos = Algo::ALL.to_vec();
    algos.extend(Algo::FLOW);
    let results = ReplayConfig::new(&scenario).algos(&algos).threads(1).run();
    let expected = [
        ("SimpleGreedy", 458, 917.5),
        ("GR", 560, 1120.0),
        ("POLAR", 412, 824.5),
        ("POLAR-OP", 416, 831.0),
        ("OPT", 480, 958.0),
        ("BATCH-MF", 560, 1120.0),
        ("BATCH-HUN", 560, 1120.0),
    ];
    assert_eq!(results.len(), expected.len());
    for (result, (name, size, payoff)) in results.iter().zip(expected) {
        assert_eq!(result.algorithm, name);
        assert_eq!(result.matching_size(), size, "{name} matching size drifted");
        assert_eq!(result.total_payoff, payoff, "{name} total payoff drifted");
    }
}
