//! Parallel-determinism regression tests.
//!
//! The `ftoa-runtime` job pool merges results in submission order, and every
//! (scenario × algorithm) cell is a pure function of its inputs — so the
//! deterministic renderings of the sweep runner (`SweepReport::
//! to_csv_deterministic`) and the replay pipeline (`ReplayMetrics::to_json
//! (true)`) must be **byte-identical** at any thread count. These tests pin
//! that: they run the same workload serial and at four workers and diff the
//! bytes. The CI `replay-regression` job checks the same property end to
//! end by replaying the committed fixture with `--threads 4` against the
//! unchanged golden file.

use ftoa::core_algorithms::IndexBackend;
use ftoa::experiments::{figures, metrics::ReplayMetrics, Algo, ReplayConfig, SuiteOptions};
use ftoa::workload::{SyntheticConfig, TraceReader};

#[test]
fn sweep_runner_csv_is_byte_identical_at_any_thread_count() {
    // A real multi-point sweep (five |W| values, full five-algorithm suite)
    // at tiny scale, once serial and once over four workers.
    let serial = figures::fig4_vary_workers(0.01, &SuiteOptions::default().with_threads(1));
    let parallel = figures::fig4_vary_workers(0.01, &SuiteOptions::default().with_threads(4));
    assert_eq!(
        serial.to_csv_deterministic(),
        parallel.to_csv_deterministic(),
        "sweep CSV diverged between threads=1 and threads=4"
    );
    // Sanity: the deterministic rendering is not trivially empty.
    let csv = serial.to_csv_deterministic();
    assert!(csv.lines().count() > 2 * 5 * 5, "expected 2 metrics x 5 algos x 5 points of rows");
}

#[test]
fn replay_metrics_json_is_byte_identical_at_any_thread_count() {
    let scenario = TraceReader::read_file("traces/fixture_small.trace")
        .expect("committed fixture trace must parse")
        .into_scenario();
    let render = |threads: usize| {
        let opts = SuiteOptions::default().with_threads(threads);
        let results = ReplayConfig::new(&scenario).options(opts).algos(&Algo::ALL).run();
        ReplayMetrics::new(
            "traces/fixture_small.trace",
            opts.index_backend.name(),
            scenario.stream.num_workers(),
            scenario.stream.num_tasks(),
            scenario.stream.len(),
            threads,
            &results,
        )
        .to_json(true)
    };
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(serial, parallel, "replay metrics diverged between threads=1 and threads=4");
    assert!(serial.contains("\"format\": \"ftoa-replay-metrics v1\""));
}

#[test]
fn every_index_backend_is_deterministic_under_parallel_fan_out() {
    // One scenario, three backends, 1-vs-4 threads each: assignments (not
    // just matching sizes) must be reproduced exactly.
    let scenario = SyntheticConfig {
        num_workers: 300,
        num_tasks: 300,
        grid_n: 8,
        num_slots: 6,
        ..Default::default()
    }
    .generate(7);
    for backend in IndexBackend::ALL {
        let opts = SuiteOptions::default().with_backend(backend);
        let serial = ReplayConfig::new(&scenario).options(opts).run();
        let parallel = ReplayConfig::new(&scenario).options(opts.with_threads(4)).run();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.algorithm, p.algorithm, "{}", backend.name());
            assert_eq!(
                s.assignments.pairs(),
                p.assignments.pairs(),
                "{} assignments diverged on {}",
                s.algorithm,
                backend.name()
            );
            assert_eq!(s.stats, p.stats, "{} stats diverged on {}", s.algorithm, backend.name());
        }
    }
}
