//! Kernel-exactness property tests: every explicit SIMD distance kernel is
//! **bit-identical** to the portable scalar oracle.
//!
//! The dispatch contract (see `ftoa_core::engine::kernels`) is that choosing
//! a kernel — by CPU detection, `FTOA_KERNEL`, or `force_kernel` — can never
//! change a single output bit: same visited positions in the same ascending
//! order, same squared distances to the last ulp, same NaN-vacancy
//! exclusions, same tie-breaks. These properties drive every supported
//! kernel on this machine against the scalar reference across random point
//! sets (lengths spanning the 4-wide AVX2 / 2-wide NEON chunk boundaries,
//! NaN-poisoned vacant slots, degenerate and unbounded radii), and pin the
//! payoff-argmax op to a naive filter-then-max reference, including exact
//! payoff and distance ties where the earliest position must win.

use ftoa::core_algorithms::engine::kernels::{self, KernelKind};
use proptest::collection::vec;
use proptest::prelude::*;

/// `(x, y, payoff)` columns the way the arena stores them: parallel slices
/// with vacant slots poisoned to NaN in every column. Payoffs are quantised
/// to small integers so exact payoff ties are common.
fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    vec((-50.0f64..50.0, -50.0f64..50.0, 0u32..4, 0u32..5), 0..80).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, payoff, occupancy)| {
                if occupancy == 0 {
                    (f64::NAN, f64::NAN, f64::NAN)
                } else {
                    (x, y, payoff as f64)
                }
            })
            .collect()
    })
}

/// Quantised variant: integer-valued coordinates and payoffs, so exact
/// `(payoff, d2)` ties — the earliest-position tiebreak — occur routinely.
fn lattice_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    vec((0u32..5, 0u32..5, 0u32..3, 0u32..6), 0..40).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, payoff, occupancy)| {
                if occupancy == 0 {
                    (f64::NAN, f64::NAN, f64::NAN)
                } else {
                    (x as f64, y as f64, payoff as f64)
                }
            })
            .collect()
    })
}

/// A squared radius spanning the degenerate cases: empty disk, point disk,
/// finite disks and the unbounded query.
fn radius_strategy() -> impl Strategy<Value = f64> {
    (0u32..8, 1.0f64..10_000.0).prop_map(|(sel, r2)| match sel {
        0 => f64::NEG_INFINITY,
        1 => 0.0,
        2 => f64::INFINITY,
        _ => r2,
    })
}

fn split(points: &[(f64, f64, f64)]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let xs = points.iter().map(|p| p.0).collect();
    let ys = points.iter().map(|p| p.1).collect();
    let payoffs = points.iter().map(|p| p.2).collect();
    (xs, ys, payoffs)
}

/// The kernels available on this CPU (always at least the scalar oracle).
fn supported_kinds() -> Vec<KernelKind> {
    KernelKind::ALL.into_iter().filter(|k| k.is_supported()).collect()
}

/// Every visit a kernel makes, with the distance captured bit-for-bit.
fn visits(
    kind: KernelKind,
    xs: &[f64],
    ys: &[f64],
    qx: f64,
    qy: f64,
    r2: f64,
) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    kernels::for_each_within_sq_in(kind, xs, ys, qx, qy, r2, &mut |pos, d2| {
        out.push((pos, d2.to_bits()));
    });
    out
}

/// Naive filter-then-max payoff reference: collect every in-radius accepted
/// candidate, then take argmax payoff, ties toward smaller squared distance,
/// residual exact ties toward the earliest position.
fn naive_best_payoff(
    points: &[(f64, f64, f64)],
    qx: f64,
    qy: f64,
    r2: f64,
    accept: &dyn Fn(usize) -> bool,
) -> Option<(usize, f64, f64)> {
    let mut survivors: Vec<(usize, f64, f64)> = Vec::new();
    for (pos, &(x, y, payoff)) in points.iter().enumerate() {
        let (dx, dy) = (x - qx, y - qy);
        let d2 = dx * dx + dy * dy;
        // NaN-poisoned slots fail this comparison for every radius,
        // including the unbounded one.
        if d2 <= r2 && accept(pos) {
            survivors.push((pos, d2, payoff));
        }
    }
    survivors.into_iter().fold(None, |best, cand| match best {
        None => Some(cand),
        Some(incumbent) => {
            let better = cand.2 > incumbent.2 || (cand.2 == incumbent.2 && cand.1 < incumbent.1);
            if better {
                Some(cand)
            } else {
                Some(incumbent)
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-identity of the sweep itself: every supported SIMD kernel visits
    /// exactly the positions the scalar oracle visits, in the same ascending
    /// order, with bit-identical squared distances.
    #[test]
    fn simd_sweeps_are_bit_identical_to_scalar(
        points in points_strategy(),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        r2 in radius_strategy(),
    ) {
        let (xs, ys, _) = split(&points);
        let oracle = visits(KernelKind::Scalar, &xs, &ys, qx, qy, r2);
        prop_assert!(
            oracle.windows(2).all(|w| w[0].0 < w[1].0),
            "scalar sweep must visit ascending positions"
        );
        for kind in supported_kinds() {
            let got = visits(kind, &xs, &ys, qx, qy, r2);
            prop_assert_eq!(
                &got, &oracle,
                "{} kernel diverged from scalar on n={} r2={}", kind.name(), xs.len(), r2
            );
        }
    }

    /// The nearest-neighbour reduction inherits bit-identity, including the
    /// accept-only-on-improvement contract and earliest-position tie-break.
    #[test]
    fn nearest_is_kernel_invariant(
        points in points_strategy(),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        r2 in radius_strategy(),
        modulus in 1usize..5,
    ) {
        let (xs, ys, _) = split(&points);
        let oracle = kernels::nearest_within_sq_in(
            KernelKind::Scalar, &xs, &ys, qx, qy, r2, &mut |pos| !pos.is_multiple_of(modulus),
        );
        for kind in supported_kinds() {
            let got = kernels::nearest_within_sq_in(
                kind, &xs, &ys, qx, qy, r2, &mut |pos| !pos.is_multiple_of(modulus),
            );
            prop_assert_eq!(
                got.map(|(p, d2)| (p, d2.to_bits())),
                oracle.map(|(p, d2)| (p, d2.to_bits())),
                "{} nearest diverged from scalar", kind.name()
            );
        }
    }

    /// The payoff-argmax op agrees with a naive filter-then-max reference on
    /// every supported kernel (the reference applies `accept` to every
    /// in-radius candidate; the kernel only consults it on improving ones —
    /// for a pure predicate both select the same survivor).
    #[test]
    fn payoff_argmax_matches_filter_then_max(
        points in points_strategy(),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        r2 in radius_strategy(),
        modulus in 1usize..5,
    ) {
        let (xs, ys, payoffs) = split(&points);
        let accept = |pos: usize| !pos.is_multiple_of(modulus);
        let oracle = naive_best_payoff(&points, qx, qy, r2, &accept);
        for kind in supported_kinds() {
            let got = kernels::best_payoff_within_sq_in(
                kind, &xs, &ys, &payoffs, qx, qy, r2, &mut |pos| accept(pos),
            );
            prop_assert_eq!(
                got.map(|(p, d2, w)| (p, d2.to_bits(), w.to_bits())),
                oracle.map(|(p, d2, w)| (p, d2.to_bits(), w.to_bits())),
                "{} payoff argmax diverged from filter-then-max", kind.name()
            );
        }
    }

    /// Exact-tie torture: on an integer lattice with quantised payoffs, the
    /// `(payoff, d2)` tiebreak chain bottoms out at the earliest position,
    /// identically on every kernel.
    #[test]
    fn payoff_ties_resolve_to_the_earliest_position_on_every_kernel(
        points in lattice_strategy(),
        qx in 0u32..5,
        qy in 0u32..5,
    ) {
        let (qx, qy) = (qx as f64, qy as f64);
        let (xs, ys, payoffs) = split(&points);
        for r2 in [0.0, 1.0, 4.0, f64::INFINITY] {
            let oracle = naive_best_payoff(&points, qx, qy, r2, &|_| true);
            if let Some((pos, d2, payoff)) = oracle {
                // The reference's survivor really is the earliest among its
                // exact ties, by construction of the fold above.
                let earlier_tie = points[..pos].iter().enumerate().any(|(i, &(x, y, w))| {
                    let (dx, dy) = (x - qx, y - qy);
                    i < pos && w == payoff && dx * dx + dy * dy == d2
                });
                prop_assert!(!earlier_tie, "reference must keep the earliest exact tie");
            }
            for kind in supported_kinds() {
                let got = kernels::best_payoff_within_sq_in(
                    kind, &xs, &ys, &payoffs, qx, qy, r2, &mut |_| true,
                );
                prop_assert_eq!(
                    got.map(|(p, d2, w)| (p, d2.to_bits(), w.to_bits())),
                    oracle.map(|(p, d2, w)| (p, d2.to_bits(), w.to_bits())),
                    "{} tie resolution diverged at r2={}", kind.name(), r2
                );
            }
        }
    }
}
