//! Engine-equivalence property tests.
//!
//! The `SimulationEngine` refactor replaced every algorithm's hand-rolled
//! event loop with shared engine + policy code, and put candidate generation
//! behind the `CandidateIndex` trait. These properties pin the refactor down
//! on random `workload` scenarios:
//!
//! * engine-based SimpleGreedy and GR produce matchings of **identical total
//!   utility** to straight ports of the pre-refactor whole-stream loops
//!   (kept below as oracles);
//! * the linear-scan backend (the reference), the grid-index backend, the
//!   epoch-rebuild KD-tree backend and the adaptive hybrid agree on the
//!   total utility of every algorithm, while the grid backend never
//!   examines more candidates;
//! * POLAR / POLAR-OP are index-independent, and every matching stays valid;
//! * region-sharded engine runs reproduce serial runs for every policy on
//!   every backend — exactly (assignments, payoff, examined counters) on the
//!   linear and grid backends, whose shards replicate the serial scan.

use ftoa::core_algorithms::algorithms::OptMode;
use ftoa::core_algorithms::engine::kernels::{force_kernel, KernelKind};
use ftoa::core_algorithms::{
    BatchGreedy, BatchHungarian, BatchMaxFlow, IndexBackend, Instance, OfflineGuide, OnlinePolicy,
    Opt, Polar, PolarOp, SimpleGreedy, SimulationEngine,
};
use ftoa::flow::BipartiteGraph;
use ftoa::types::{Event, EventStream, ProblemConfig, Task, TimeDelta, TimeStamp, Worker};
use ftoa::workload::{Scenario, SyntheticConfig};
use proptest::prelude::*;

/// A small random synthetic scenario (the generator used by the experiment
/// harness, scaled down so each case runs in milliseconds).
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (1usize..60, 1usize..60, 2usize..8, 2usize..6, 0u64..1_000).prop_map(
        |(num_workers, num_tasks, grid_n, num_slots, seed)| {
            SyntheticConfig {
                num_workers,
                num_tasks,
                grid_n,
                num_slots,
                region_side: 20.0,
                slot_minutes: 10.0,
                ..SyntheticConfig::default()
            }
            .generate(seed)
        },
    )
}

/// Straight port of the pre-refactor SimpleGreedy event loop (wait-in-place
/// greedy with linear scans), kept as the oracle for total utility.
fn reference_simple_greedy(config: &ProblemConfig, stream: &EventStream) -> usize {
    let velocity = config.velocity;
    let mut idle_workers: Vec<Worker> = Vec::new();
    let mut pending_tasks: Vec<Task> = Vec::new();
    let mut matched = 0usize;
    for event in stream.iter() {
        let now = event.time();
        match event {
            Event::WorkerArrival(w) => {
                let mut best: Option<(usize, f64)> = None;
                if now < w.deadline() {
                    for (i, r) in pending_tasks.iter().enumerate() {
                        if now + w.location.travel_time(&r.location, velocity) > r.deadline() {
                            continue;
                        }
                        let d = w.location.distance(&r.location);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((i, d));
                        }
                    }
                }
                if let Some((i, _)) = best {
                    pending_tasks.swap_remove(i);
                    matched += 1;
                } else {
                    idle_workers.push(*w);
                }
            }
            Event::TaskArrival(r) => {
                let mut best: Option<(usize, f64)> = None;
                for (i, w) in idle_workers.iter().enumerate() {
                    if now > w.deadline()
                        || now + w.location.travel_time(&r.location, velocity) > r.deadline()
                    {
                        continue;
                    }
                    let d = w.location.distance(&r.location);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                if let Some((i, _)) = best {
                    idle_workers.swap_remove(i);
                    matched += 1;
                } else {
                    pending_tasks.push(*r);
                }
            }
        }
    }
    matched
}

/// Straight port of the pre-refactor GR (windowed batch matching) loop.
fn reference_batch_greedy(
    config: &ProblemConfig,
    stream: &EventStream,
    window_minutes: f64,
) -> usize {
    let velocity = config.velocity;
    let window = TimeDelta::minutes(window_minutes.max(1e-6));
    let mut available_workers: Vec<Worker> = Vec::new();
    let mut pending_tasks: Vec<Task> = Vec::new();
    let mut matched = 0usize;
    let mut window_end = match stream.events().first() {
        Some(e) => e.time() + window,
        None => TimeStamp::ZERO,
    };
    let flush = |now: TimeStamp,
                 available_workers: &mut Vec<Worker>,
                 pending_tasks: &mut Vec<Task>,
                 matched: &mut usize| {
        available_workers.retain(|w| w.deadline() >= now);
        pending_tasks.retain(|r| r.deadline() >= now);
        if available_workers.is_empty() || pending_tasks.is_empty() {
            return;
        }
        let mut graph = BipartiteGraph::new(available_workers.len(), pending_tasks.len());
        for (wi, w) in available_workers.iter().enumerate() {
            for (ri, r) in pending_tasks.iter().enumerate() {
                let depart = now.max(r.release);
                if depart + w.location.travel_time(&r.location, velocity) <= r.deadline() {
                    graph.add_edge(wi, ri);
                }
            }
        }
        let matching = graph.max_matching();
        let mut matched_workers = vec![false; available_workers.len()];
        let mut matched_tasks = vec![false; pending_tasks.len()];
        for &(wi, ri) in &matching.pairs {
            *matched += 1;
            matched_workers[wi] = true;
            matched_tasks[ri] = true;
        }
        let mut wi = 0;
        available_workers.retain(|_| {
            let keep = !matched_workers[wi];
            wi += 1;
            keep
        });
        let mut ri = 0;
        pending_tasks.retain(|_| {
            let keep = !matched_tasks[ri];
            ri += 1;
            keep
        });
    };
    for event in stream.iter() {
        let now = event.time();
        while now >= window_end {
            flush(window_end, &mut available_workers, &mut pending_tasks, &mut matched);
            window_end += window;
        }
        match event {
            Event::WorkerArrival(w) => available_workers.push(*w),
            Event::TaskArrival(r) => pending_tasks.push(*r),
        }
    }
    flush(window_end, &mut available_workers, &mut pending_tasks, &mut matched);
    matched
}

fn instance_of(scenario: &Scenario) -> Instance<'_> {
    Instance::new(
        &scenario.config,
        &scenario.stream,
        &scenario.predicted_workers,
        &scenario.predicted_tasks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine-based SimpleGreedy equals the pre-refactor loop, on both index
    /// backends.
    #[test]
    fn simple_greedy_matches_pre_refactor_loop(scenario in scenario_strategy()) {
        let instance = instance_of(&scenario);
        let oracle = reference_simple_greedy(&scenario.config, &scenario.stream);
        for backend in IndexBackend::ALL {
            let result = SimulationEngine::new(backend)
                .run(&instance, &mut SimpleGreedy.policy());
            prop_assert_eq!(
                result.matching_size(), oracle,
                "backend {:?} diverged from the pre-refactor loop", backend
            );
            prop_assert!(result
                .assignments
                .validate_static(
                    scenario.stream.workers(),
                    scenario.stream.tasks(),
                    scenario.config.velocity
                )
                .is_ok());
        }
    }

    /// Engine-based GR equals the pre-refactor windowed loop, on both index
    /// backends and across window lengths.
    #[test]
    fn batch_greedy_matches_pre_refactor_loop(
        scenario in scenario_strategy(),
        window in 0.5f64..20.0,
    ) {
        let instance = instance_of(&scenario);
        let oracle = reference_batch_greedy(&scenario.config, &scenario.stream, window);
        for backend in IndexBackend::ALL {
            let result = SimulationEngine::new(backend)
                .run(&instance, &mut BatchGreedy { window_minutes: window }.policy());
            prop_assert_eq!(
                result.matching_size(), oracle,
                "backend {:?} diverged (window {})", backend, window
            );
        }
    }

    /// Kernel dispatch is invisible to every algorithm: forcing the scalar
    /// oracle, forcing the best SIMD kernel this CPU supports, and leaving
    /// the automatic `FTOA_KERNEL` resolution in place all yield the same
    /// matchings on all four backends. (The kernels are bit-identical, so
    /// racing the process-wide override from concurrent tests is benign.)
    #[test]
    fn matchings_are_kernel_dispatch_invariant(scenario in scenario_strategy()) {
        let instance = instance_of(&scenario);
        for backend in IndexBackend::ALL {
            let engine = SimulationEngine::new(backend);
            force_kernel(Some(KernelKind::Scalar));
            let scalar_greedy = engine.run(&instance, &mut SimpleGreedy.policy());
            let scalar_gr = engine
                .run(&instance, &mut BatchGreedy::default().policy());
            force_kernel(Some(KernelKind::best_supported()));
            let simd_greedy = engine.run(&instance, &mut SimpleGreedy.policy());
            let simd_gr = engine.run(&instance, &mut BatchGreedy::default().policy());
            force_kernel(None);
            let auto_greedy = engine.run(&instance, &mut SimpleGreedy.policy());

            prop_assert_eq!(
                scalar_greedy.matching_size(), simd_greedy.matching_size(),
                "backend {:?}: forced {} diverged from scalar",
                backend, KernelKind::best_supported().name()
            );
            prop_assert_eq!(scalar_greedy.matching_size(), auto_greedy.matching_size());
            prop_assert_eq!(scalar_gr.matching_size(), simd_gr.matching_size());
            prop_assert_eq!(
                scalar_greedy.stats.candidates_examined,
                simd_greedy.stats.candidates_examined,
                "kernel choice must not change how many candidates a backend examines"
            );
        }
    }

    /// POLAR and POLAR-OP run through the engine and are index-independent;
    /// the grid backend never examines more candidates than the scan.
    #[test]
    fn guided_policies_are_backend_independent(scenario in scenario_strategy()) {
        let instance = instance_of(&scenario);
        let guide = OfflineGuide::build(
            &scenario.config,
            &scenario.predicted_workers,
            &scenario.predicted_tasks,
        );
        let polar = Polar::default();
        let polar_op = PolarOp::default();
        let linear = SimulationEngine::new(IndexBackend::LinearScan);
        let grid = SimulationEngine::new(IndexBackend::Grid);
        let kd = SimulationEngine::new(IndexBackend::Kd);
        let hybrid = SimulationEngine::new(IndexBackend::Hybrid);

        let polar_linear = linear.run(&instance, &mut polar.policy(&instance, &guide));
        let polar_grid = grid.run(&instance, &mut polar.policy(&instance, &guide));
        let polar_kd = kd.run(&instance, &mut polar.policy(&instance, &guide));
        let polar_hybrid = hybrid.run(&instance, &mut polar.policy(&instance, &guide));
        prop_assert_eq!(polar_linear.matching_size(), polar_grid.matching_size());
        prop_assert_eq!(polar_linear.matching_size(), polar_kd.matching_size());
        prop_assert_eq!(polar_linear.matching_size(), polar_hybrid.matching_size());

        let op_linear = linear.run(&instance, &mut polar_op.policy(&instance, &guide));
        let op_grid = grid.run(&instance, &mut polar_op.policy(&instance, &guide));
        let op_kd = kd.run(&instance, &mut polar_op.policy(&instance, &guide));
        let op_hybrid = hybrid.run(&instance, &mut polar_op.policy(&instance, &guide));
        prop_assert_eq!(op_linear.matching_size(), op_grid.matching_size());
        prop_assert_eq!(op_linear.matching_size(), op_kd.matching_size());
        prop_assert_eq!(op_linear.matching_size(), op_hybrid.matching_size());

        prop_assert!(op_grid.matching_size() >= polar_grid.matching_size());
        prop_assert!(
            polar_grid.stats.candidates_examined <= polar_linear.stats.candidates_examined
        );
        prop_assert!(op_grid
            .assignments
            .validate_flexible(
                scenario.stream.workers(),
                scenario.stream.tasks(),
                scenario.config.velocity
            )
            .is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharding tentpole invariant: region-sharded engine runs reproduce
    /// serial runs for all seven policies on all four backends. Linear and
    /// grid shards are exact replicas of the serial scan — identical
    /// assignments, payoff and examined counters. The striped kd/hybrid
    /// backends are pinned at matching level: exact result sets, but
    /// exact-distance ties may resolve by a different (still deterministic)
    /// epoch order than the serial tree.
    #[test]
    fn sharded_runs_reproduce_serial_runs(
        scenario in scenario_strategy(),
        shards in 2usize..6,
    ) {
        let instance = instance_of(&scenario);
        let guide = OfflineGuide::build(
            &scenario.config,
            &scenario.predicted_workers,
            &scenario.predicted_tasks,
        );
        type PolicyCtor<'a> = Box<dyn Fn() -> Box<dyn OnlinePolicy + 'a> + 'a>;
        let policies: Vec<(&str, PolicyCtor)> = vec![
            ("SimpleGreedy", Box::new(|| Box::new(SimpleGreedy.policy()))),
            ("GR", Box::new(|| Box::new(BatchGreedy::default().policy()))),
            ("POLAR", Box::new(|| Box::new(Polar::default().policy(&instance, &guide)))),
            ("POLAR-OP", Box::new(|| Box::new(PolarOp::default().policy(&instance, &guide)))),
            ("OPT", Box::new(|| Box::new(Opt { mode: OptMode::Exact }.policy()))),
            ("BATCH-MF", Box::new(|| Box::new(BatchMaxFlow { window_minutes: 3.0 }.policy()))),
            ("BATCH-HUN", Box::new(|| Box::new(BatchHungarian { window_minutes: 3.0 }.policy()))),
        ];
        for backend in IndexBackend::ALL {
            let serial_engine = SimulationEngine::new(backend);
            let sharded_engine = SimulationEngine::new(backend).with_shards(shards);
            for (name, make) in &policies {
                let serial = serial_engine.run(&instance, &mut *make());
                let sharded = sharded_engine.run(&instance, &mut *make());
                prop_assert_eq!(
                    serial.matching_size(), sharded.matching_size(),
                    "{} on {:?} diverged at {} shards", name, backend, shards
                );
                prop_assert_eq!(
                    serial.stats.backend, sharded.stats.backend,
                    "sharding must not change the reported backend name"
                );
                if matches!(backend, IndexBackend::LinearScan | IndexBackend::Grid) {
                    prop_assert_eq!(
                        serial.assignments.pairs(), sharded.assignments.pairs(),
                        "{} on {:?}: sharded assignments must replicate serial at {} shards",
                        name, backend, shards
                    );
                    prop_assert_eq!(
                        serial.total_payoff, sharded.total_payoff,
                        "{} on {:?} payoff diverged at {} shards", name, backend, shards
                    );
                    prop_assert_eq!(
                        serial.stats.candidates_examined, sharded.stats.candidates_examined,
                        "{} on {:?}: sharded scan must replicate the serial scan at {} shards",
                        name, backend, shards
                    );
                }
            }
        }
    }
}
