//! Flow-backed batch policies vs the offline optimum.
//!
//! On an instance whose arrivals all fall inside one batching window, the
//! flow-backed policies solve exactly one round — over every object alive at
//! the window boundary — so their matching must equal the *offline* maximum
//! matching of that round's feasibility graph (computed independently here
//! with `flow::hopcroft_karp` over capacity-replicated worker vertices).
//! These properties pin that on random weighted instances: random positions,
//! arrival times, capacities and payoffs.

use ftoa::core_algorithms::{BatchHungarian, BatchMaxFlow, Instance, OnlineAlgorithm};
use ftoa::prediction::SpatioTemporalMatrix;
use ftoa::types::{
    EventStream, GridPartition, Location, ProblemConfig, SlotPartition, Task, TaskId, TimeDelta,
    TimeStamp, Worker, WorkerId,
};
use proptest::prelude::*;

const WINDOW_MINUTES: f64 = 2.0;
const VELOCITY: f64 = 1.0;

/// `(x, y, arrival_min, window_min, capacity_or_payoff_knob)` per object.
type RawObject = (f64, f64, f64, f64, u32);

fn config() -> ProblemConfig {
    ProblemConfig::new(
        GridPartition::square(10.0, 4).expect("valid grid"),
        SlotPartition::over_horizon(TimeDelta::minutes(60.0), 4).expect("valid slots"),
        VELOCITY,
        TimeDelta::minutes(30.0),
        TimeDelta::minutes(30.0),
    )
}

/// Build a stream whose arrivals all fall in `[0, 1]` minutes — strictly
/// inside the first `WINDOW_MINUTES` batching window, so both flow policies
/// solve exactly one round at `t* = first_arrival + window`.
fn build_stream(raw_workers: &[RawObject], raw_tasks: &[RawObject]) -> EventStream {
    let workers = raw_workers
        .iter()
        .map(|&(x, y, t, wait, knob)| {
            Worker::new(
                WorkerId(0),
                Location::new(x, y),
                TimeStamp::minutes(t),
                TimeDelta::minutes(10.0 + wait),
            )
            .with_capacity(1 + knob % 3)
        })
        .collect();
    let tasks = raw_tasks
        .iter()
        .map(|&(x, y, t, patience, knob)| {
            Task::new(
                TaskId(0),
                Location::new(x, y),
                TimeStamp::minutes(t),
                TimeDelta::minutes(5.0 + patience),
            )
            .with_payoff(0.5 + f64::from(knob % 7) * 0.4)
        })
        .collect();
    EventStream::new(workers, tasks)
}

fn raw_objects(max: usize) -> impl Strategy<Value = Vec<RawObject>> {
    proptest::collection::vec(
        (0.0..10.0f64, 0.0..10.0f64, 0.0..1.0f64, 0.0..20.0f64, 0u32..64),
        1..max,
    )
}

/// The single round instant both policies solve at: the first arrival plus
/// one batching window.
fn round_instant(stream: &EventStream) -> TimeStamp {
    let first_worker = stream.workers().iter().map(|w| w.start).min();
    let first_task = stream.tasks().iter().map(|r| r.release).min();
    let first = match (first_worker, first_task) {
        (Some(w), Some(t)) => w.min(t),
        (Some(w), None) => w,
        (None, Some(t)) => t,
        (None, None) => TimeStamp::ZERO,
    };
    first + TimeDelta::minutes(WINDOW_MINUTES)
}

/// The offline maximum matching of the round at `t_star`, computed from
/// scratch: workers alive at the boundary enter as one left vertex per
/// capacity unit, and an edge exists exactly when departing at `t_star`
/// reaches the task before its deadline (the policies' own feasibility
/// predicate, evaluated with the same float expressions).
fn offline_optimum(stream: &EventStream, t_star: TimeStamp) -> usize {
    let tasks: Vec<&Task> = stream.tasks().iter().filter(|r| r.deadline() >= t_star).collect();
    let mut adj: Vec<Vec<usize>> = Vec::new();
    for w in stream.workers().iter().filter(|w| w.deadline() >= t_star) {
        let row: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, r)| t_star + w.location.travel_time(&r.location, VELOCITY) <= r.deadline())
            .map(|(ri, _)| ri)
            .collect();
        for _ in 0..w.capacity {
            adj.push(row.clone());
        }
    }
    let (size, _, _) = ftoa::flow::hopcroft_karp(adj.len(), tasks.len(), &adj);
    size
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_round_batch_flow_equals_the_offline_maximum_matching(
        raw_workers in raw_objects(8),
        raw_tasks in raw_objects(8),
    ) {
        let config = config();
        let stream = build_stream(&raw_workers, &raw_tasks);
        let expected = offline_optimum(&stream, round_instant(&stream));

        let zeros = SpatioTemporalMatrix::zeros(
            config.slots.num_slots(),
            config.grid.num_cells(),
        );
        let instance = Instance::new(&config, &stream, &zeros, &zeros);
        let mf = BatchMaxFlow { window_minutes: WINDOW_MINUTES }.run(&instance);
        let hun = BatchHungarian { window_minutes: WINDOW_MINUTES }.run(&instance);

        prop_assert_eq!(
            mf.matching_size(), expected,
            "BATCH-MF diverged from the offline Hopcroft–Karp optimum"
        );
        prop_assert_eq!(
            hun.matching_size(), expected,
            "BATCH-HUN sacrificed cardinality for payoff"
        );
        // Among max-cardinality matchings BATCH-HUN maximises payoff, so it
        // can never collect less than the cardinality-only solver.
        prop_assert!(
            hun.total_payoff >= mf.total_payoff - 1e-9,
            "BATCH-HUN payoff {} below BATCH-MF payoff {}",
            hun.total_payoff,
            mf.total_payoff
        );
        // The engine's weighted accounting sums exactly the served payoffs.
        for result in [&mf, &hun] {
            let served: f64 = result
                .assignments
                .pairs()
                .iter()
                .map(|p| stream.tasks()[p.task.index()].payoff)
                .sum();
            prop_assert!((result.total_payoff - served).abs() < 1e-9);
        }
    }
}
