//! Facade crate for the FTOA reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that downstream
//! users (and the examples/integration tests in this repository) can depend
//! on a single `ftoa` crate.

pub use experiments;
pub use flow;
pub use ftoa_core as core_algorithms;
pub use ftoa_runtime as runtime;
pub use ftoa_types as types;
pub use prediction;
pub use spatial;
pub use workload;
